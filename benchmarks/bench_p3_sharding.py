"""P3 — sharded storage: fan-out latency scaling and per-shard outage.

Two claims the sharded device stack must earn quantitatively:

* **latency scales down with shards** — with per-device read latency
  of 1 ms, a multi-block exact query fans its reads out across shards,
  so mean query latency improves monotonically from 1 to 4 shards
  while every answer stays bitwise-identical to the unsharded stack;
* **one dead shard degrades only itself** — with shard 1 failing every
  read, no query fails unhandled, the survivors keep answering, and
  every degraded answer carries a finite guaranteed bound with only
  that shard's breaker open.

Results land in ``benchmarks/results/P3_sharding.txt`` (table) and in
``BENCH_sharding.json`` at the repo root (machine-readable: per-shard
latency stats, outage accounting) — CI uploads the JSON as an artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.faults import CircuitBreaker, FaultPlan, RetryPolicy
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery
from repro.storage.device import StorageSpec
from repro.storage.latency import LatencyModel

from _util import fmt_ms, format_table, safe_percentile

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_sharding.json"

SHARD_COUNTS = (1, 2, 4)
DEVICE_LATENCY_S = 0.001  # >= 1 ms per read: the fan-out regime
N_QUERIES = 24


def make_cube() -> np.ndarray:
    rng = np.random.default_rng(2003)
    return rng.poisson(3.0, (64, 64)).astype(float)


def build_engine(shards: int) -> ProPolyneEngine:
    """Uncached sharded stack: every read pays the device latency."""
    return ProPolyneEngine(
        make_cube(), max_degree=1, block_size=7,
        storage=StorageSpec(
            shards=shards,
            latency=LatencyModel(base_s=DEVICE_LATENCY_S),
        ),
    )


def workload(seed: int = 17) -> list[RangeSumQuery]:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(N_QUERIES):
        lo1 = int(rng.integers(0, 40))
        lo2 = int(rng.integers(0, 40))
        queries.append(
            RangeSumQuery.count(
                [(lo1, lo1 + int(rng.integers(8, 23))),
                 (lo2, lo2 + int(rng.integers(8, 23)))]
            )
        )
    return queries


def run_shard_point(shards: int, queries, baseline_answers) -> dict:
    """One shard count: per-query exact latency plus equivalence check."""
    engine = build_engine(shards)
    latencies = []
    identical = 0
    for query, truth in zip(queries, baseline_answers):
        started = time.perf_counter()
        value = engine.evaluate_exact(query)
        latencies.append(time.perf_counter() - started)
        identical += int(value == truth)  # bitwise, not approx
    reads = engine.store.io_snapshot().reads
    return {
        "shards": shards,
        "queries": len(queries),
        "identical_answers": identical,
        "latency_mean_s": (
            None if not latencies
            else round(float(np.mean(latencies)), 5)
        ),
        "latency_p50_s": safe_percentile(latencies, 50),
        "latency_p95_s": safe_percentile(latencies, 95),
        "device_reads": int(reads),
        "fetches_by_shard": {
            str(i): int(stack.layer("disk").io.reads)
            for i, stack in enumerate(engine.store._built.stacks)
        },
    }


def run_outage(queries, baseline_answers) -> dict:
    """Shard 1 fails every read: account for every query's outcome."""
    engine = ProPolyneEngine(
        make_cube(), max_degree=1, block_size=7,
        storage=StorageSpec(
            shards=4,
            fault_plan=FaultPlan(seed=9, read_error_rate=1.0),
            fault_shards=(1,),
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0,
                                     budget_s=0.0),
            breaker=CircuitBreaker(failure_threshold=3,
                                   recovery_timeout_s=30.0),
        ),
    )
    degraded = unhandled = bound_violations = 0
    skipped_total = 0
    for query, truth in zip(queries, baseline_answers):
        try:
            outcome = engine.evaluate_degradable(query)
        except Exception:  # the contract: this must never happen
            unhandled += 1
            continue
        if outcome.degraded:
            degraded += 1
            skipped_total += outcome.blocks_skipped
            if not (np.isfinite(outcome.error_bound)
                    and abs(outcome.value - truth)
                    <= outcome.error_bound + 1e-9):
                bound_violations += 1
    return {
        "shards": 4,
        "dead_shard": 1,
        "queries": len(queries),
        "degraded": degraded,
        "unhandled": unhandled,
        "bound_violations": bound_violations,
        "blocks_skipped": skipped_total,
        "breaker_states": [b.state for b in engine.store.breakers],
    }


def run_benchmark() -> dict:
    queries = workload()
    clean = ProPolyneEngine(make_cube(), max_degree=1, block_size=7)
    baseline = [clean.evaluate_exact(q) for q in queries]
    runs = [run_shard_point(n, queries, baseline) for n in SHARD_COUNTS]
    outage = run_outage(queries, baseline)
    payload = {
        "schema": "repro.bench/sharding-v1",
        "device_latency_s": DEVICE_LATENCY_S,
        "runs": runs,
        "speedup_vs_1_shard": {
            str(r["shards"]): (
                None
                if not runs[0]["latency_mean_s"] or not r["latency_mean_s"]
                else round(
                    runs[0]["latency_mean_s"] / r["latency_mean_s"], 2
                )
            )
            for r in runs
        },
        "outage": outage,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_p3_sharding_sweep(emit, benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    runs = payload["runs"]
    outage = payload["outage"]
    rows = [
        [r["shards"], fmt_ms(r["latency_mean_s"]),
         fmt_ms(r["latency_p50_s"]),
         fmt_ms(r["latency_p95_s"]),
         f"{r['identical_answers']}/{r['queries']}"]
        for r in runs
    ]
    emit(
        "P3_sharding",
        format_table(
            ["shards", "mean ms", "p50 ms", "p95 ms", "identical"], rows
        )
        + f"\noutage (shard {outage['dead_shard']} dead): "
        f"{outage['degraded']}/{outage['queries']} degraded, "
        f"{outage['unhandled']} unhandled, "
        f"breakers {'/'.join(outage['breaker_states'])}"
        + f"\nJSON baseline written to {JSON_PATH.name}",
    )
    by_shards = {r["shards"]: r for r in runs}
    # Transparency: sharding must not change a single answer.
    for r in runs:
        assert r["identical_answers"] == r["queries"]
    # The headline scaling claim: mean latency improves monotonically
    # from 1 to 4 shards under >= 1 ms per-device read latency.
    assert (by_shards[1]["latency_mean_s"]
            > by_shards[2]["latency_mean_s"]
            > by_shards[4]["latency_mean_s"])
    # A single-shard outage degrades queries, never crashes them, and
    # trips only the dead shard's breaker.
    assert outage["unhandled"] == 0
    assert outage["degraded"] > 0
    assert outage["bound_violations"] == 0
    assert outage["breaker_states"][1] == "open"
    assert all(state == "closed"
               for i, state in enumerate(outage["breaker_states"])
               if i != 1)
    assert JSON_PATH.exists()
