"""Sensor noise models.

The paper's first listed immersidata challenge is that the data are
*noisy* (§1, challenge 5) and the acquisition subsystem must clean them.
This module provides the composable corruption pipeline the simulators
apply to ideal signals: white measurement noise, slow calibration drift,
transient spikes (cable/EM glitches) and ADC quantization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import AcquisitionError

__all__ = ["NoiseModel", "snr_db"]


@dataclass(frozen=True)
class NoiseModel:
    """Parametric sensor corruption.

    Attributes:
        white_sigma: Standard deviation of iid Gaussian measurement noise.
        drift_sigma: Per-step standard deviation of a random-walk bias
            (models slow glove calibration drift).
        spike_prob: Per-sample probability of a transient spike.
        spike_scale: Spike magnitude (exponentially distributed, signed).
        quantization_step: ADC resolution; 0 disables quantization.
    """

    white_sigma: float = 0.5
    drift_sigma: float = 0.0
    spike_prob: float = 0.0
    spike_scale: float = 10.0
    quantization_step: float = 0.0

    def __post_init__(self) -> None:
        if self.white_sigma < 0 or self.drift_sigma < 0:
            raise AcquisitionError("noise standard deviations must be >= 0")
        if not 0 <= self.spike_prob <= 1:
            raise AcquisitionError(
                f"spike probability {self.spike_prob} outside [0, 1]"
            )
        if self.quantization_step < 0:
            raise AcquisitionError("quantization step must be >= 0")

    def apply(self, signal: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Corrupt ``signal`` (any shape; noise is iid over all entries,
        drift runs along axis 0)."""
        clean = np.asarray(signal, dtype=float)
        noisy = clean.copy()
        if self.white_sigma > 0:
            noisy += rng.normal(0.0, self.white_sigma, size=clean.shape)
        if self.drift_sigma > 0:
            steps = rng.normal(0.0, self.drift_sigma, size=clean.shape)
            noisy += np.cumsum(steps, axis=0)
        if self.spike_prob > 0:
            mask = rng.random(clean.shape) < self.spike_prob
            spikes = rng.exponential(self.spike_scale, size=clean.shape)
            signs = rng.choice([-1.0, 1.0], size=clean.shape)
            noisy += mask * spikes * signs
        if self.quantization_step > 0:
            noisy = np.round(noisy / self.quantization_step) * self.quantization_step
        return noisy


def snr_db(clean: np.ndarray, noisy: np.ndarray) -> float:
    """Signal-to-noise ratio in dB between a clean reference and a
    corrupted/reconstructed version of it."""
    clean = np.asarray(clean, dtype=float)
    noisy = np.asarray(noisy, dtype=float)
    if clean.shape != noisy.shape:
        raise AcquisitionError(
            f"shape mismatch {clean.shape} vs {noisy.shape}"
        )
    noise_power = float(np.mean((clean - noisy) ** 2))
    if noise_power == 0:
        return float("inf")
    signal_power = float(np.mean(clean**2))
    if signal_power == 0:
        raise AcquisitionError("SNR undefined for an all-zero reference")
    return 10.0 * np.log10(signal_power / noise_power)
