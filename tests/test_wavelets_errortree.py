"""Tests for the wavelet error tree (repro.wavelets.errortree)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import TransformError
from repro.wavelets.dwt import wavedec
from repro.wavelets.errortree import (
    children,
    leaf_path,
    nodes_at_depth,
    parent,
    path_to_root,
    range_support,
    tree_depth,
)


class TestTopology:
    def test_parent_of_root(self):
        assert parent(0) is None

    def test_parent_of_coarsest_detail(self):
        assert parent(1) == 0

    def test_parent_child_inverse(self):
        n = 32
        for node in range(1, n):
            for child in children(node, n):
                assert parent(child) == node

    def test_root_child(self):
        assert children(0, 16) == (1,)
        assert children(0, 1) == ()

    def test_leaves_have_no_children(self):
        n = 16
        for node in range(n // 2, n):
            assert children(node, n) == ()

    def test_negative_node_rejected(self):
        with pytest.raises(TransformError):
            parent(-1)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(TransformError):
            children(1, 12)


class TestPaths:
    def test_path_to_root_from_leaf(self):
        path = path_to_root(12)
        assert path == [12, 6, 3, 1, 0]

    def test_leaf_path_length(self):
        assert len(leaf_path(5, 16)) == 5  # root + 4 levels

    def test_leaf_path_is_a_tree_path(self):
        path = leaf_path(9, 16)
        assert path[0] == 0
        for upper, lower in zip(path[1:], path[2:]):
            assert parent(lower) == upper

    def test_leaf_path_bounds(self):
        with pytest.raises(TransformError):
            leaf_path(16, 16)
        with pytest.raises(TransformError):
            leaf_path(0, 12)

    @settings(max_examples=30, deadline=None)
    @given(position=st.integers(0, 63))
    def test_leaf_path_reconstructs_haar_point(self, position):
        """Zeroing all coefficients outside the leaf path must leave the
        Haar reconstruction at `position` unchanged — the access-pattern
        fact the storage subsystem's tiling exploits."""
        from repro.wavelets.dwt import WaveletCoefficients, waverec

        n = 64
        rng = np.random.default_rng(position)
        x = rng.normal(size=n)
        flat = wavedec(x, "haar").to_flat()
        keep = set(leaf_path(position, n))
        masked = np.array(
            [v if i in keep else 0.0 for i, v in enumerate(flat)]
        )
        bundle = WaveletCoefficients.from_flat(masked, 6, "haar")
        assert waverec(bundle)[position] == pytest.approx(x[position])


class TestRangeSupport:
    def test_support_contains_boundary_paths(self):
        support = range_support(3, 12, 16)
        assert set(leaf_path(3, 16)) <= support
        assert set(leaf_path(12, 16)) <= support

    def test_support_size_logarithmic(self):
        n = 2**14
        support = range_support(100, 9000, n)
        assert len(support) <= 2 * (14 + 1)

    def test_empty_range(self):
        assert range_support(5, 4, 16) == set()

    def test_haar_range_sum_needs_only_support(self):
        """A Haar COUNT-weighted range sum depends only on the support."""
        from repro.wavelets.lazy import lazy_range_query_transform

        n = 64
        lo, hi = 7, 45
        sparse = lazy_range_query_transform([1.0], lo, hi, n, "haar")
        assert set(sparse.entries) <= range_support(lo, hi, n)


class TestDepthHelpers:
    def test_tree_depth(self):
        assert tree_depth(1) == 0
        assert tree_depth(64) == 6

    def test_nodes_at_depth(self):
        assert list(nodes_at_depth(0, 16)) == [1]
        assert list(nodes_at_depth(3, 16)) == list(range(8, 16))

    def test_depth_out_of_range(self):
        with pytest.raises(TransformError):
            nodes_at_depth(4, 16)

    def test_all_nodes_partitioned_by_depth(self):
        n = 32
        seen = {0}
        for depth in range(tree_depth(n)):
            seen |= set(nodes_at_depth(depth, n))
        assert seen == set(range(n))
