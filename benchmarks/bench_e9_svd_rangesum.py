"""E9 — §3.4.1: second-order statistics (covariance, hence SVD) are
derivable from SUM queries of second-order polynomials, so the weighted-SVD
similarity runs on top of ProPolyne; and incremental SVD maintenance is far
cheaper than per-step recomputation.

Part 1: the algebraic identity — the covariance matrix reassembled from
wavelet-domain range-sums equals the directly computed covariance of the
quantized motion, to machine precision, and the resulting eigenstructure
still separates signs.

Part 2: the incremental-SVD micro-benchmark — maintaining the covariance's
sufficient statistics per frame (O(d^2)) versus rebuilding the covariance
from the whole window per frame (O(T d^2)).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.online.incsvd import IncrementalMotionSpectrum
from repro.online.svd_propolyne import (
    covariance_matrix_via_propolyne,
    quantize_channels,
    spectrum_via_propolyne,
)
from repro.sensors.asl import ASL_VOCABULARY, synthesize_sign
from repro.sensors.noise import NoiseModel

from conftest import format_table

N_BINS = 16
CHANNELS = [0, 4, 20, 25, 27]  # thumb, abduction, palm, tracker Y, roll


def run_identity_study():
    rng = np.random.default_rng(9)
    quiet = NoiseModel(white_sigma=0.3)
    inst = synthesize_sign(ASL_VOCABULARY[5], rng, noise=quiet).frames[:, CHANNELS]

    bins, lo, steps = quantize_channels(inst, N_BINS)
    quantized = lo[None, :] + bins * steps[None, :]
    direct = np.cov(quantized.T, bias=True)
    via_rangesums = covariance_matrix_via_propolyne(inst, N_BINS)
    max_abs_diff = float(np.max(np.abs(direct - via_rangesums)))

    # Similarity separation through the range-sum path.
    same = synthesize_sign(ASL_VOCABULARY[5], rng, noise=quiet).frames[:, CHANNELS]
    other = synthesize_sign(ASL_VOCABULARY[7], rng, noise=quiet).frames[:, CHANNELS]
    va, ua = spectrum_via_propolyne(inst, N_BINS)
    vb, ub = spectrum_via_propolyne(same, N_BINS)
    vc, uc = spectrum_via_propolyne(other, N_BINS)

    def sim(v1, u1, v2, u2):
        w = np.abs(v1) + np.abs(v2)
        w = w / w.sum()
        return float(np.dot(w, np.abs(np.sum(u1 * u2, axis=0))))

    sim_same = sim(va, ua, vb, ub)
    sim_other = sim(va, ua, vc, uc)
    return max_abs_diff, sim_same, sim_other


def test_e9_covariance_identity(emit, benchmark):
    max_abs_diff, sim_same, sim_other = benchmark.pedantic(
        run_identity_study, rounds=1, iterations=1
    )
    emit(
        "E9a_svd_from_rangesums",
        format_table(
            ["quantity", "value"],
            [
                ["max |COV_direct - COV_rangesum|", f"{max_abs_diff:.2e}"],
                ["similarity(same sign) via range-sums", f"{sim_same:.3f}"],
                ["similarity(other sign) via range-sums", f"{sim_other:.3f}"],
            ],
        ),
    )
    assert max_abs_diff < 1e-8, "the Shao reduction must be exact"
    assert sim_same > sim_other, (
        "range-sum SVD similarity must still separate signs"
    )


def run_incremental_study():
    rng = np.random.default_rng(19)
    d = 28
    window = 100
    frames = rng.normal(size=(1500, d))

    start = time.perf_counter()
    inc = IncrementalMotionSpectrum(d)
    for i, frame in enumerate(frames):
        inc.add(frame)
        if i >= window:
            inc.remove(frames[i - window])
    inc_time = time.perf_counter() - start

    start = time.perf_counter()
    for i in range(window, frames.shape[0]):
        chunk = frames[i - window : i]
        centred = chunk - chunk.mean(axis=0)
        _ = centred.T @ chunk / window
    batch_time = time.perf_counter() - start

    np.testing.assert_allclose(
        inc.covariance(),
        np.cov(frames[-window:].T, bias=True),
        atol=1e-8,
    )
    return inc_time, batch_time


def test_e9_incremental_maintenance_cheaper(emit, benchmark):
    inc_time, batch_time = run_incremental_study()
    emit(
        "E9b_incremental_svd",
        format_table(
            ["maintenance strategy", "time for 1500 frames"],
            [
                ["incremental (O(d^2)/frame)", f"{inc_time * 1e3:.1f} ms"],
                ["recompute window (O(T d^2)/frame)", f"{batch_time * 1e3:.1f} ms"],
            ],
        ),
    )
    # Incremental must not lose to full recomputation; typically it wins
    # by the window factor for larger windows.
    assert inc_time < batch_time * 2.0

    # Timed reference for the benchmark table: one update step.
    inc = IncrementalMotionSpectrum(28)
    frame = np.random.default_rng(0).normal(size=28)
    benchmark(inc.add, frame)
