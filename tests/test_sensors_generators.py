"""Tests for the sensor simulators: glove, ASL, classroom, atmosphere."""

import numpy as np
import pytest

from repro.core.errors import AcquisitionError, RecognitionError, SchemaError, StreamError
from repro.sensors.asl import (
    ASL_VOCABULARY,
    NEUTRAL_SHAPE,
    SignSpec,
    hand_shape,
    synthesize_session,
    synthesize_sign,
)
from repro.sensors.atmosphere import (
    atmospheric_cube,
    dataset_suite,
    random_cube,
    spiky_cube,
)
from repro.sensors.classroom import (
    generate_cohort,
    make_profile,
    simulate_session,
)
from repro.sensors.glove import CyberGloveSimulator, band_limited_signal
from repro.sensors.noise import NoiseModel


class TestBandLimitedSignal:
    def test_spectrum_respects_band_limit(self):
        rng = np.random.default_rng(0)
        rate, f_max = 100.0, 5.0
        signal = band_limited_signal(20.0, rate, f_max, rng)
        spectrum = np.abs(np.fft.rfft(signal)) ** 2
        freqs = np.fft.rfftfreq(signal.size, 1.0 / rate)
        in_band = spectrum[freqs <= f_max].sum()
        # Finite-window spectral leakage keeps this just under 1.
        assert in_band / spectrum.sum() > 0.99

    def test_undersampled_generation_rejected(self):
        with pytest.raises(AcquisitionError):
            band_limited_signal(1.0, 8.0, 5.0, np.random.default_rng(0))

    def test_activity_envelope(self):
        rng = np.random.default_rng(1)
        n = 1000
        envelope = np.zeros(n)
        envelope[500:] = 1.0
        signal = band_limited_signal(10.0, 100.0, 3.0, rng, activity=envelope)
        assert np.all(signal[:500] == 0.0)
        assert np.any(signal[500:] != 0.0)

    def test_bad_envelope_shape(self):
        with pytest.raises(AcquisitionError):
            band_limited_signal(
                1.0, 100.0, 3.0, np.random.default_rng(0), activity=np.ones(5)
            )


class TestGloveSimulator:
    def test_capture_shape(self):
        sim = CyberGloveSimulator()
        session = sim.capture(2.0, np.random.default_rng(0))
        assert session.shape == (200, 28)

    def test_values_roughly_in_physical_span(self):
        sim = CyberGloveSimulator(noise=NoiseModel(white_sigma=0.0))
        session = sim.capture(2.0, np.random.default_rng(0))
        for col, spec in enumerate(sim.sensors):
            assert session[:, col].min() >= spec.lo - 1.0
            assert session[:, col].max() <= spec.hi + 1.0

    def test_capture_source_streams(self):
        sim = CyberGloveSimulator()
        src = sim.capture_source(0.5, np.random.default_rng(0))
        frames = list(src)
        assert len(frames) == 50
        assert frames[0].width == 28

    def test_true_rates(self):
        sim = CyberGloveSimulator()
        rates = sim.true_rates()
        assert rates.shape == (28,)
        # Distal joints (sensor 7, col 6) need faster sampling than palm
        # arch (sensor 20, col 19).
        assert rates[6] > rates[19]

    def test_duration_validation(self):
        with pytest.raises(AcquisitionError):
            CyberGloveSimulator().capture(0.0, np.random.default_rng(0))

    def test_determinism(self):
        sim = CyberGloveSimulator()
        a = sim.capture(1.0, np.random.default_rng(9))
        b = sim.capture(1.0, np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)


class TestHandShapes:
    def test_deterministic(self):
        np.testing.assert_array_equal(hand_shape("A"), hand_shape("A"))

    def test_distinct_letters_differ(self):
        shapes = {letter: hand_shape(letter) for letter in "ABCDEGYR"}
        letters = list(shapes)
        for i, a in enumerate(letters):
            for b in letters[i + 1 :]:
                dist = np.linalg.norm(shapes[a] - shapes[b])
                assert dist > 10.0, f"shapes {a} and {b} too close"

    def test_shape_dimension(self):
        assert hand_shape("Q").shape == (22,)
        assert NEUTRAL_SHAPE.shape == (22,)

    def test_empty_name_rejected(self):
        with pytest.raises(RecognitionError):
            hand_shape("")


class TestSignSynthesis:
    def test_vocabulary_size(self):
        assert len(ASL_VOCABULARY) == 10
        assert len({s.name for s in ASL_VOCABULARY}) == 10

    def test_instance_shape(self):
        rng = np.random.default_rng(0)
        inst = synthesize_sign(ASL_VOCABULARY[0], rng)
        assert inst.frames.shape[1] == 28
        assert inst.frames.shape[0] > 50

    def test_time_warp_varies_length(self):
        rng = np.random.default_rng(0)
        lengths = {
            synthesize_sign(ASL_VOCABULARY[5], rng).frames.shape[0]
            for _ in range(8)
        }
        assert len(lengths) > 1

    def test_static_sign_has_quiet_tracker(self):
        rng = np.random.default_rng(0)
        quiet = synthesize_sign(
            ASL_VOCABULARY[0], rng, noise=NoiseModel(white_sigma=0.0)
        )
        moving = synthesize_sign(
            ASL_VOCABULARY[5], rng, noise=NoiseModel(white_sigma=0.0)
        )
        assert np.std(quiet.frames[:, 22:]) < np.std(moving.frames[:, 22:])

    def test_same_sign_shares_posture(self):
        """Two instances of a sign reach (roughly) the same hand shape."""
        rng = np.random.default_rng(3)
        a = synthesize_sign(ASL_VOCABULARY[1], rng, noise=NoiseModel(white_sigma=0.0))
        b = synthesize_sign(ASL_VOCABULARY[1], rng, noise=NoiseModel(white_sigma=0.0))
        mid_a = a.frames[a.frames.shape[0] // 2, :22]
        mid_b = b.frames[b.frames.shape[0] // 2, :22]
        assert np.linalg.norm(mid_a - mid_b) < 15.0

    def test_invalid_trajectory(self):
        with pytest.raises(RecognitionError):
            SignSpec("BAD", "A", "teleport")

    def test_invalid_rate(self):
        with pytest.raises(RecognitionError):
            synthesize_sign(ASL_VOCABULARY[0], np.random.default_rng(0), rate_hz=0)


class TestSessionSynthesis:
    def test_segments_cover_signs_in_order(self):
        rng = np.random.default_rng(0)
        sequence = [ASL_VOCABULARY[i] for i in (0, 5, 7)]
        frames, segments = synthesize_session(sequence, rng)
        assert [s.name for s in segments] == ["A", "GREEN", "RED"]
        assert segments[0].start > 0  # leading gap
        for earlier, later in zip(segments, segments[1:]):
            assert earlier.end < later.start  # gap between signs
        assert segments[-1].end < frames.shape[0]  # trailing gap

    def test_empty_sequence_rejected(self):
        with pytest.raises(RecognitionError):
            synthesize_session([], np.random.default_rng(0))

    def test_frame_width(self):
        frames, _ = synthesize_session(
            [ASL_VOCABULARY[0]], np.random.default_rng(0)
        )
        assert frames.shape[1] == 28


class TestClassroom:
    def test_profile_groups(self):
        rng = np.random.default_rng(0)
        normals = [make_profile(i, "normal", rng) for i in range(40)]
        adhds = [make_profile(i, "adhd", rng) for i in range(40)]
        mean_n = np.mean([p.movement_intensity for p in normals])
        mean_a = np.mean([p.movement_intensity for p in adhds])
        assert mean_a > mean_n

    def test_unknown_group(self):
        with pytest.raises(StreamError):
            make_profile(0, "robot", np.random.default_rng(0))

    def test_session_structure(self):
        rng = np.random.default_rng(1)
        profile = make_profile(0, "adhd", rng)
        session = simulate_session(profile, rng, duration=30.0)
        assert set(session.trackers) == {
            "head", "left_hand", "right_hand", "left_leg", "right_leg",
        }
        for matrix in session.trackers.values():
            assert matrix.shape == (1800, 6)
        assert session.duration == pytest.approx(30.0)
        assert len(session.stimuli) > 5
        assert len(session.distractions) >= 1

    def test_target_bookkeeping(self):
        rng = np.random.default_rng(2)
        profile = make_profile(0, "normal", rng)
        session = simulate_session(profile, rng, duration=100.0)
        targets = [e for e in session.stimuli if e.is_target]
        assert all(e.letter == "X" for e in targets)
        assert session.hits() + session.misses() == len(targets)
        assert session.mean_reaction_time() > 0.1

    def test_adhd_moves_more(self):
        rng = np.random.default_rng(3)
        cohort = generate_cohort(8, rng, duration=20.0, separation=1.5)
        speeds = {"normal": [], "adhd": []}
        for session in cohort:
            motion = np.concatenate(
                [np.diff(m, axis=0).ravel() for m in session.trackers.values()]
            )
            speeds[session.profile.group].append(float(np.mean(np.abs(motion))))
        assert np.mean(speeds["adhd"]) > np.mean(speeds["normal"])

    def test_cohort_balance(self):
        cohort = generate_cohort(3, np.random.default_rng(0), duration=5.0)
        groups = [s.profile.group for s in cohort]
        assert groups.count("normal") == groups.count("adhd") == 3

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(StreamError):
            generate_cohort(0, rng)
        with pytest.raises(StreamError):
            simulate_session(make_profile(0, "normal", rng), rng, duration=0.0)


class TestAtmosphere:
    def test_cube_shapes(self):
        assert atmospheric_cube((16, 16)).shape == (16, 16)
        assert atmospheric_cube((8, 16, 4)).shape == (8, 16, 4)

    def test_latitudinal_gradient(self):
        cube = atmospheric_cube((32, 32), noise_sigma=0.0)
        equator = cube[16, :].mean()
        pole = cube[0, :].mean()
        assert equator > pole + 10.0

    def test_smoothness(self):
        """Adjacent-cell differences are small relative to global spread —
        the compressibility ProPolyne's E4 benchmark exploits."""
        cube = atmospheric_cube((32, 32), noise_sigma=0.0)
        local = np.abs(np.diff(cube, axis=0)).mean()
        spread = cube.max() - cube.min()
        assert local < spread / 10.0

    def test_bad_shape(self):
        with pytest.raises(SchemaError):
            atmospheric_cube((8,))

    def test_spiky_cube_is_sparse(self):
        cube = spiky_cube((64, 64), spike_fraction=0.01)
        assert np.mean(np.abs(cube) > 5.0) < 0.05
        assert cube.max() > 20.0

    def test_spike_fraction_validated(self):
        with pytest.raises(SchemaError):
            spiky_cube((8, 8), spike_fraction=0.0)

    def test_random_cube_white(self):
        cube = random_cube((64, 64))
        assert abs(np.mean(cube)) < 0.1
        assert np.std(cube) == pytest.approx(1.0, rel=0.1)

    def test_dataset_suite(self):
        suite = dataset_suite((32, 32))
        assert set(suite) == {"atmospheric", "spiky", "random"}
        assert all(c.shape == (32, 32) for c in suite.values())

    def test_determinism(self):
        a = dataset_suite((16, 16), seed=3)
        b = dataset_suite((16, 16), seed=3)
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])
