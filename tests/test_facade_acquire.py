"""Facade coverage: every sampler through AIMS.acquire, config plumbing,
and the EXPLAIN surface through a populated facade cube."""

import numpy as np
import pytest

from repro.core.aims import AIMS, AIMSConfig
from repro.query.explain import explain, format_plan
from repro.query.rangesum import RangeSumQuery
from repro.sensors.glove import CyberGloveSimulator
from repro.sensors.noise import NoiseModel


@pytest.fixture(scope="module")
def session():
    sim = CyberGloveSimulator(noise=NoiseModel(white_sigma=0.0))
    return sim.capture(6.0, np.random.default_rng(0)), sim.rate_hz


class TestAcquireAllSamplers:
    @pytest.mark.parametrize(
        "sampler", ["fixed", "modified_fixed", "grouped", "adaptive"]
    )
    def test_every_strategy_through_facade(self, session, sampler):
        matrix, rate = session
        system = AIMS(AIMSConfig(sampler=sampler))
        report = system.acquire(matrix, rate)
        assert report.sampling.strategy == sampler
        assert report.nrmse < 0.05
        assert report.bytes_recorded < matrix.size * 4
        assert report.reconstructed.shape == matrix.shape

    def test_adaptive_wins_on_bursty_session(self):
        """Adaptive's edge needs activity variation (a uniformly busy
        session gives it nothing to exploit — see E1 for the full
        comparison)."""
        sim = CyberGloveSimulator(noise=NoiseModel(white_sigma=0.0))
        rng = np.random.default_rng(9)
        n = int(10.0 * sim.rate_hz)
        activity = np.ones(n)
        activity[n // 2 :] = 0.05
        matrix = sim.capture(10.0, rng, activity=activity)
        fixed = AIMS(AIMSConfig(sampler="fixed")).acquire(matrix, sim.rate_hz)
        adaptive = AIMS(AIMSConfig(sampler="adaptive")).acquire(
            matrix, sim.rate_hz
        )
        assert adaptive.bytes_recorded < fixed.bytes_recorded


class TestConfigPlumbing:
    def test_block_size_reaches_engine(self):
        system = AIMS(AIMSConfig(block_size=3))
        engine = system.populate("c", np.ones((16, 16)))
        assert engine.store.allocation.axes[0].block_size == 3

    def test_max_degree_reaches_engine(self):
        system = AIMS(AIMSConfig(max_degree=0))
        engine = system.populate("c", np.ones((16, 16)))
        assert engine.filter.name == "haar"

    def test_pool_capacity_enables_caching(self):
        system = AIMS(AIMSConfig(pool_capacity=512))
        engine = system.populate("c", np.abs(
            np.random.default_rng(0).normal(size=(32, 32))
        ))
        q = RangeSumQuery.count([(2, 29), (3, 28)])
        engine.evaluate_exact(q)
        before = engine.store.io_snapshot()
        engine.evaluate_exact(q)
        assert engine.store.io_since(before).reads == 0


class TestExplainThroughFacade:
    def test_explain_a_populated_cube(self):
        system = AIMS(AIMSConfig(max_degree=1))
        engine = system.populate(
            "c", np.abs(np.random.default_rng(1).normal(size=(32, 32)))
        )
        plan = explain(engine, RangeSumQuery.count([(4, 27), (2, 29)]))
        assert plan.blocks_to_read > 0
        text = format_plan(plan)
        assert "db2" in text
