"""Incremental SVD over a growing stream (§3.4.1).

"We would like to explore techniques for computing SVD incrementally,
i.e., computation of SVD utilizing results that have already been computed
in the earlier steps thus reducing the overall computation cost
considerably."

Because the weighted-SVD similarity only consumes the eigenstructure of
the sensor-space covariance, incrementality reduces to maintaining the
covariance's sufficient statistics under appends (and window evictions):
count, mean and the centred second-moment matrix, updated in O(d^2) per
frame via Welford/Youngs-Cramer updates.  The eigen-decomposition is then
computed on demand from the maintained matrix — no O(T d^2) re-scan of the
stream, which is the saving experiment E9's companion micro-bench shows.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import RecognitionError

__all__ = ["IncrementalMotionSpectrum"]


class IncrementalMotionSpectrum:
    """Streaming sensor-space covariance with on-demand eigenstructure.

    Supports append (``add``) and — for sliding windows — eviction
    (``remove``) of frames, both O(d^2).
    """

    def __init__(self, width: int) -> None:
        if width < 1:
            raise RecognitionError(f"width must be >= 1, got {width}")
        self.width = width
        self._n = 0
        self._mean = np.zeros(width)
        self._m2 = np.zeros((width, width))  # sum of centred outer products

    def __len__(self) -> int:
        return self._n

    def add(self, frame: np.ndarray) -> None:
        """Append one frame (O(d^2))."""
        x = np.asarray(frame, dtype=float)
        if x.shape != (self.width,):
            raise RecognitionError(
                f"frame shape {x.shape} != ({self.width},)"
            )
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        delta2 = x - self._mean
        self._m2 += np.outer(delta, delta2)

    def remove(self, frame: np.ndarray) -> None:
        """Evict a frame previously added (sliding-window maintenance)."""
        x = np.asarray(frame, dtype=float)
        if x.shape != (self.width,):
            raise RecognitionError(
                f"frame shape {x.shape} != ({self.width},)"
            )
        if self._n <= 1:
            self.reset()
            return
        delta2 = x - self._mean  # mean still includes x
        self._n -= 1
        self._mean -= (x - self._mean) / self._n
        delta = x - self._mean  # mean after removal
        self._m2 -= np.outer(delta, delta2)

    def reset(self) -> None:
        """Forget everything."""
        self._n = 0
        self._mean[:] = 0.0
        self._m2[:] = 0.0

    def covariance(self) -> np.ndarray:
        """Current population covariance matrix."""
        if self._n < 1:
            raise RecognitionError("no frames accumulated")
        return self._m2 / self._n

    def spectrum(self) -> tuple[np.ndarray, np.ndarray]:
        """Eigenvalues/eigenvectors (decreasing) of the current covariance."""
        values, vectors = np.linalg.eigh(self.covariance())
        order = np.argsort(values)[::-1]
        return values[order], vectors[:, order]

    @property
    def mean(self) -> np.ndarray:
        """Current running mean (copy)."""
        return self._mean.copy()
