"""The one audited placement hash for every partitioning decision.

Two layers of the system place keys onto homes: the storage tier
stripes block ids over shards (:class:`~repro.storage.sharding.ShardedDevice`)
and the cluster tier routes ``(tenant, dataset)`` namespaces onto
backends (:class:`~repro.cluster.ring.HashRing`).  Both reduce to the
same primitive — a deterministic, process-independent hash of an
arbitrary hashable key — and before this module each grew its own copy.

:func:`stable_hash` is that primitive: ``crc32(repr(key))``.  ``repr``
gives a stable byte encoding for every hashable id the stores use
(ints, index tuples, strings) without depending on Python's per-process
hash randomization, and CRC32 is cheap, seedless and identical on every
platform.  :func:`place` is the modular placement the sharded device
has used since PR 4 — kept byte-for-byte stable here, which the
placement tests pin down.
"""

from __future__ import annotations

import zlib
from typing import Hashable

__all__ = ["place", "stable_hash"]

#: CRC32 output space: placements and ring points live in [0, 2**32).
HASH_SPACE = 1 << 32


def stable_hash(key: Hashable) -> int:
    """Deterministic 32-bit hash of any hashable key.

    ``crc32(repr(key))`` — stable across processes, platforms and runs
    (no ``PYTHONHASHSEED`` dependence), uniform enough for placement.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


def place(block_id: Hashable, n_shards: int) -> int:
    """Deterministic shard placement: ``crc32(repr(block_id)) mod N``.

    The exact placement :class:`~repro.storage.sharding.ShardedDevice`
    has always used; moving it here must never change where a block
    lands (the byte-stability test fixes known placements).
    """
    return stable_hash(block_id) % n_shards
