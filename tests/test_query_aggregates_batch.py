"""Tests for statistical aggregates, batch shared-I/O, and data approx."""

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.query.aggregates import StatisticalAggregates
from repro.query.batch import BatchEvaluator
from repro.query.dataapprox import DataApproxEngine
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery, evaluate_on_cube, relation_to_cube


RNG = np.random.default_rng(71)


@pytest.fixture(scope="module")
def relation():
    """200 tuples over attributes (a0, a1) in [0, 32)^2, correlated."""
    a0 = RNG.integers(0, 32, size=200)
    a1 = np.clip(a0 // 2 + RNG.integers(0, 8, size=200), 0, 31)
    return np.column_stack([a0, a1])


@pytest.fixture(scope="module")
def cube(relation):
    return relation_to_cube(relation, (32, 32))


@pytest.fixture(scope="module")
def engine(cube):
    return ProPolyneEngine(cube, max_degree=2, block_size=7)


@pytest.fixture(scope="module")
def stats(engine):
    return StatisticalAggregates(engine)


def in_range(relation, ranges):
    mask = np.ones(relation.shape[0], dtype=bool)
    for d, (lo, hi) in enumerate(ranges):
        mask &= (relation[:, d] >= lo) & (relation[:, d] <= hi)
    return relation[mask]


FULL = [(0, 31), (0, 31)]
PART = [(4, 25), (2, 28)]


class TestAggregates:
    def test_count(self, relation, stats):
        assert stats.count(PART) == pytest.approx(len(in_range(relation, PART)))

    def test_total(self, relation, stats):
        rows = in_range(relation, PART)
        assert stats.total(PART, dim=1) == pytest.approx(float(rows[:, 1].sum()))

    def test_average(self, relation, stats):
        rows = in_range(relation, PART)
        assert stats.average(PART, dim=0) == pytest.approx(
            float(rows[:, 0].mean())
        )

    def test_variance(self, relation, stats):
        rows = in_range(relation, FULL)
        assert stats.variance(FULL, dim=1) == pytest.approx(
            float(rows[:, 1].var()), rel=1e-6
        )

    def test_covariance(self, relation, stats):
        rows = in_range(relation, FULL)
        expected = float(np.cov(rows[:, 0], rows[:, 1], bias=True)[0, 1])
        assert stats.covariance(FULL, 0, 1) == pytest.approx(expected, rel=1e-6)

    def test_covariance_same_dim_is_variance(self, stats):
        assert stats.covariance(FULL, 1, 1) == pytest.approx(
            stats.variance(FULL, 1)
        )

    def test_positive_correlation_detected(self, stats):
        """The generator couples a1 to a0, so COV must come out positive —
        the paper's 'correlation between hits and attention' query shape."""
        assert stats.covariance(FULL, 0, 1) > 0

    def test_empty_range_average_rejected(self, stats):
        empty = [(30, 31), (0, 0)]
        if stats.count(empty) == pytest.approx(0.0, abs=1e-9):
            with pytest.raises(QueryError):
                stats.average(empty, dim=0)

    def test_progressive_average_converges(self, relation, stats):
        rows = in_range(relation, PART)
        exact = float(rows[:, 0].mean())
        steps = list(stats.progressive_average(PART, dim=0))
        assert steps[-1].value == pytest.approx(exact)
        assert steps[-1].error_bound == pytest.approx(0.0, abs=1e-6)

    def test_progressive_average_bounds_hold(self, relation, stats):
        rows = in_range(relation, PART)
        exact = float(rows[:, 0].mean())
        for step in stats.progressive_average(PART, dim=0):
            if step.error_bound != float("inf"):
                assert abs(step.value - exact) <= step.error_bound + 1e-6


class TestBatch:
    def _group_by_queries(self):
        """A 4-cell group-by over the first attribute."""
        return [
            RangeSumQuery.count([(8 * g, 8 * g + 7), (0, 31)])
            for g in range(4)
        ]

    def test_exact_matches_individual(self, cube, engine):
        queries = self._group_by_queries()
        batch = BatchEvaluator(engine)
        got = batch.evaluate_exact(queries)
        for value, query in zip(got, queries):
            assert value == pytest.approx(evaluate_on_cube(cube, query))

    def test_shared_io_saves_blocks(self, engine):
        queries = self._group_by_queries()
        batch = BatchEvaluator(engine)
        shared = batch.shared_block_count(queries)
        independent = batch.independent_block_count(queries)
        assert shared < independent

    def test_progressive_converges_per_query(self, cube, engine):
        queries = self._group_by_queries()
        batch = BatchEvaluator(engine)
        last = None
        for step in batch.evaluate_progressive(queries):
            last = step
        for value, query in zip(last.estimates, queries):
            assert value == pytest.approx(evaluate_on_cube(cube, query))
        assert all(b == pytest.approx(0.0, abs=1e-6) for b in last.error_bounds)

    def test_progressive_bounds_guaranteed(self, cube, engine):
        queries = self._group_by_queries()
        exacts = [evaluate_on_cube(cube, q) for q in queries]
        batch = BatchEvaluator(engine)
        for step in batch.evaluate_progressive(queries):
            for est, bound, exact in zip(
                step.estimates, step.error_bounds, exacts
            ):
                assert abs(est - exact) <= bound + 1e-6

    def test_empty_batch_rejected(self, engine):
        with pytest.raises(QueryError):
            BatchEvaluator(engine).evaluate_exact([])


class TestDataApprox:
    def test_full_budget_is_exact(self, cube):
        engine = DataApproxEngine(cube, budget=cube.size, max_degree=1)
        q = RangeSumQuery.count([(4, 25), (2, 28)])
        assert engine.evaluate(q) == pytest.approx(evaluate_on_cube(cube, q))

    def test_small_budget_approximates(self, cube):
        engine = DataApproxEngine(cube, budget=32, max_degree=1)
        q = RangeSumQuery.count([(0, 31), (0, 31)])
        exact = evaluate_on_cube(cube, q)
        got = engine.evaluate(q)
        # Whole-domain COUNT is dominated by the top coefficient: close.
        assert got == pytest.approx(exact, rel=0.2)

    def test_error_shrinks_with_budget(self, cube):
        q = RangeSumQuery.count([(3, 17), (9, 30)])
        exact = evaluate_on_cube(cube, q)
        errors = []
        for budget in (16, 128, 1024):
            engine = DataApproxEngine(cube, budget=budget, max_degree=1)
            errors.append(abs(engine.evaluate(q) - exact))
        assert errors[-1] <= errors[0] + 1e-9

    def test_dataset_dependence(self):
        """White noise defeats data approximation; smooth data does not —
        one half of claim E4."""
        from repro.sensors.atmosphere import atmospheric_cube, random_cube

        q = RangeSumQuery.count([(5, 50), (10, 60)])
        smooth = atmospheric_cube((64, 64))
        noise = random_cube((64, 64)) * 10 + 3.0
        errors = {}
        for name, cube in (("smooth", smooth), ("noise", noise)):
            exact = evaluate_on_cube(cube, q)
            engine = DataApproxEngine(cube, budget=100, max_degree=0)
            errors[name] = abs(engine.evaluate(q) - exact) / abs(exact)
        assert errors["smooth"] < errors["noise"]

    def test_budget_validation(self, cube):
        with pytest.raises(QueryError):
            DataApproxEngine(cube, budget=0)

    def test_size_property(self, cube):
        assert DataApproxEngine(cube, budget=10).size == 10
