"""Ablation A7 — random projections vs wavelet-domain approximation.

§3.3.1 floats "dimension reduction techniques such as random projections"
as a ProPolyne refinement.  This ablation holds *storage* fixed (floats
retained) and compares three ways to answer COUNT range-sums
approximately on a smooth cube:

* ``sketch``   — a k-float Rademacher sketch (JL guarantee, data-agnostic);
* ``synopsis`` — the top-k wavelet coefficients (data approximation);
* ``propolyne``— progressive query approximation stopped after consuming
  k query coefficients (query approximation).

The shape to see: on compressible data the wavelet approaches crush the
sketch, which cannot exploit smoothness — the reason AIMS stores wavelets
and treats projections as a complement, not a substitute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.query.dataapprox import DataApproxEngine
from repro.query.propolyne import ProPolyneEngine
from repro.query.randproj import RandomProjectionEngine
from repro.query.rangesum import RangeSumQuery, evaluate_on_cube
from repro.sensors.atmosphere import atmospheric_cube

from conftest import format_table

BUDGET = 128  # floats of storage / coefficients consumed
N_QUERIES = 12


def run_comparison():
    cube = atmospheric_cube((64, 64), np.random.default_rng(71))
    rng = np.random.default_rng(72)
    queries = []
    for _ in range(N_QUERIES):
        lo1, lo2 = rng.integers(0, 40, size=2)
        queries.append(
            RangeSumQuery.count(
                [(int(lo1), int(min(63, lo1 + rng.integers(10, 30)))),
                 (int(lo2), int(min(63, lo2 + rng.integers(10, 30))))]
            )
        )
    exact = [evaluate_on_cube(cube, q) for q in queries]

    sketch = RandomProjectionEngine(cube, k=BUDGET, seed=1)
    synopsis = DataApproxEngine(cube, budget=BUDGET, max_degree=0)
    propolyne = ProPolyneEngine(cube, max_degree=0, block_size=7)

    def propolyne_at_budget(query):
        last = 0.0
        for est in propolyne.evaluate_progressive(query):
            last = est.estimate
            if est.coefficients_used >= BUDGET:
                break
        return last

    rel = lambda got, want: abs(got - want) / max(abs(want), 1.0)
    errors = {
        "sketch": [rel(sketch.evaluate(q), e) for q, e in zip(queries, exact)],
        "synopsis": [
            rel(synopsis.evaluate(q), e) for q, e in zip(queries, exact)
        ],
        "propolyne": [
            rel(propolyne_at_budget(q), e) for q, e in zip(queries, exact)
        ],
    }
    medians = {name: float(np.median(v)) for name, v in errors.items()}
    rows = [
        [name, BUDGET, f"{medians[name]:.4f}", f"{np.max(v):.4f}"]
        for name, v in errors.items()
    ]
    return medians, rows


def test_a7_sketch_vs_wavelets(emit, benchmark):
    medians, rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    emit(
        "A7_random_projection",
        format_table(
            ["method", "storage (floats)", "median rel.err", "max rel.err"],
            rows,
        ),
    )
    # Both wavelet approaches beat the data-agnostic sketch on smooth
    # data at equal storage — by a lot.
    assert medians["synopsis"] < medians["sketch"] / 2
    assert medians["propolyne"] < medians["sketch"] / 2
