"""Meta-test: every public item in the library carries a docstring.

The reproduction's documentation deliverable includes "doc comments on
every public item"; this test enforces it mechanically, so a new public
function cannot land undocumented.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_items(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        if obj is None:
            continue
        # Only report items defined in this package (not re-exported
        # stdlib/numpy objects).
        owner = getattr(obj, "__module__", "")
        if not str(owner).startswith("repro"):
            continue
        yield name, obj


def test_all_modules_have_docstrings():
    undocumented = [
        m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()
    ]
    assert undocumented == [], f"modules without docstrings: {undocumented}"


def test_all_public_items_have_docstrings():
    missing = []
    for module in _walk_modules():
        for name, obj in _public_items(module):
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if not (inspect.getdoc(obj) or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert missing == [], f"undocumented public items: {sorted(set(missing))}"


def test_public_methods_have_docstrings():
    missing = []
    for module in _walk_modules():
        for name, obj in _public_items(module):
            if not inspect.isclass(obj):
                continue
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if not (inspect.isfunction(attr) or isinstance(
                    attr, (property, classmethod, staticmethod)
                )):
                    continue
                target = (
                    attr.fget if isinstance(attr, property)
                    else attr.__func__
                    if isinstance(attr, (classmethod, staticmethod))
                    else attr
                )
                if target is None or not (inspect.getdoc(target) or "").strip():
                    missing.append(f"{module.__name__}.{name}.{attr_name}")
    assert missing == [], (
        f"undocumented public methods: {sorted(set(missing))}"
    )
