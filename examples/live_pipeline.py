"""The deployed AIMS loop: live acquisition feeding live recognition.

Everything in this script is *causal*: a simulated signer performs signs
tick by tick; the streaming adaptive sampler decides per tick what to
record (using only the past); the recorded samples cross a jittery, lossy
wire; the multiplexer reassembles frames; and the recognizer isolates and
names the signs — while the recorded bandwidth stays a fraction of the
raw device rate.  This is Fig. 1's left-to-right data path running as one
pipeline rather than as separate subsystem demos.

Run:
    python examples/live_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import AIMS
from repro.online.recognizer import RecognizerConfig
from repro.sensors.asl import ASL_VOCABULARY, synthesize_session, synthesize_sign
from repro.streams.jitter import perturb_timing
from repro.streams.multiplex import multiplex
from repro.streams.sample import frames_to_matrix


def main() -> None:
    rng = np.random.default_rng(31)  # §3.1
    rate_hz = 100.0
    system = AIMS()

    # ---- the signer ---------------------------------------------------------
    signs = [ASL_VOCABULARY[i] for i in (5, 0, 9, 7)]
    system.train_vocabulary(
        {s.name: [synthesize_sign(s, rng).frames for _ in range(4)]
         for s in signs}
    )
    frames, segments = synthesize_session(signs, rng, gap_duration=0.8)
    print(f"signer performs: {[s.name for s in segments]} "
          f"({frames.shape[0]} device ticks)")

    # ---- causal acquisition ---------------------------------------------------
    sampler = system.live_sampler(width=28, rate_hz=rate_hz)
    samples = sampler.process(frames)
    raw_bytes = frames.size * 4
    recorded_bytes = len(samples) * 4
    print(f"live adaptive sampling: {recorded_bytes} of {raw_bytes} bytes "
          f"({recorded_bytes / raw_bytes:.1%}), "
          f"{sampler.stats.rate_updates} rate updates")

    # ---- a lossy wire -----------------------------------------------------------
    messy = perturb_timing(
        iter(samples), rng, jitter_sd=0.001, drop_prob=0.02
    )
    rebuilt = frames_to_matrix(
        list(multiplex(messy, list(range(28)), rate_hz=rate_hz))
    )
    print(f"wire: 2% drops + 1 ms jitter -> {rebuilt.shape[0]} frames "
          f"reassembled by the multiplexer")

    # ---- live recognition --------------------------------------------------------
    recognizer = system.recognizer(
        rest_frames=rebuilt[: segments[0].start],
        config=RecognizerConfig(window=50, compare_every=10,
                                declare_threshold=0.4, decline_steps=3),
    )
    detections = recognizer.process(rebuilt)
    print(f"recognized    : {[d.name for d in detections]}")
    hits = sum(1 for d, s in zip(detections, segments) if d.name == s.name)
    print(f"{hits}/{len(segments)} signs recognized from the sampled, "
          f"jittered stream")


if __name__ == "__main__":
    main()
