"""Batch-path equivalence: the vectorized, coalesced batch executor.

The acceptance bar for PR 6's batch path is *bitwise* identity, not
approximate agreement: the CSR stack + single gather + per-segment
``np.dot`` must reduce each query in exactly the order the engine's
scalar kernel (:func:`repro.query.propolyne.sparse_inner_product`) does,
whatever the batch shape — group-by cells, drill-downs, overlapping
ranges, a single query — and whatever storage sits underneath (plain,
sharded, fault-injected).  Degraded batches must carry per-query
guaranteed error bounds.
"""

import math
import threading

import numpy as np
import pytest

from repro.core.errors import QueryError, StorageError
from repro.faults import CircuitBreaker, FaultPlan, RetryPolicy
from repro.query.batch import BatchEvaluator, group_by
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery
from repro.query.service import (
    QueryService,
    ScanCoordinator,
    _Flight,
    shared_scan_view,
)
from repro.storage.device import StorageSpec


@pytest.fixture(scope="module")
def cube():
    rng = np.random.default_rng(2003)
    return rng.poisson(3.0, (32, 32)).astype(float)


@pytest.fixture(scope="module")
def engine(cube):
    return ProPolyneEngine(cube, max_degree=1, block_size=7)


OVERLAPPING = [
    RangeSumQuery.count([(0, 15), (0, 15)]),
    RangeSumQuery.count([(4, 19), (4, 19)]),
    RangeSumQuery.count([(8, 23), (8, 23)]),
    RangeSumQuery.count([(8, 23), (4, 19)]),
]

DRILL_DOWN = [
    RangeSumQuery.count([(0, 31), (0, 31)]),
    RangeSumQuery.count([(0, 15), (0, 31)]),
    RangeSumQuery.count([(0, 7), (0, 31)]),
    RangeSumQuery.count([(0, 7), (0, 15)]),
]


class TestBitwiseEquivalence:
    def test_overlapping_batch_bitwise_equal_to_sequential(self, engine):
        values = BatchEvaluator(engine).evaluate_exact(OVERLAPPING)
        for value, query in zip(values, OVERLAPPING):
            assert value == engine.evaluate_exact(query)  # bitwise

    def test_drill_down_batch_bitwise_equal_to_sequential(self, engine):
        values = BatchEvaluator(engine).evaluate_exact(DRILL_DOWN)
        for value, query in zip(values, DRILL_DOWN):
            assert value == engine.evaluate_exact(query)

    def test_weighted_queries_bitwise_equal(self, engine):
        queries = [
            RangeSumQuery.weighted([(3, 29), (4, 30)], {0: 1}),
            RangeSumQuery.weighted([(5, 20), (5, 20)], {0: 1, 1: 1}),
            RangeSumQuery.count([(5, 20), (5, 20)]),
        ]
        values = BatchEvaluator(engine).evaluate_exact(queries)
        for value, query in zip(values, queries):
            assert value == engine.evaluate_exact(query)

    def test_single_query_batch_bitwise_equal(self, engine):
        query = RangeSumQuery.count([(3, 19), (8, 27)])
        assert BatchEvaluator(engine).evaluate_exact(
            [query]
        )[0] == engine.evaluate_exact(query)

    def test_empty_batch_raises(self, engine):
        with pytest.raises(QueryError):
            BatchEvaluator(engine).evaluate_exact([])
        with pytest.raises(QueryError):
            BatchEvaluator(engine).evaluate_degradable([])

    def test_group_by_cells_bitwise_equal(self, engine):
        result = group_by(
            engine, dim=0, group_width=8, other_ranges={1: (4, 27)}
        )
        for (lo, hi), value in result.as_dict().items():
            cell = RangeSumQuery.count([(lo, hi), (4, 27)])
            assert value == engine.evaluate_exact(cell)

    def test_sharded_batch_bitwise_equal(self, cube):
        sharded = ProPolyneEngine(
            cube, max_degree=1, block_size=7,
            storage=StorageSpec(shards=4),
        )
        values = BatchEvaluator(sharded).evaluate_exact(OVERLAPPING)
        for value, query in zip(values, OVERLAPPING):
            assert value == sharded.evaluate_exact(query)


class TestCoalescedIO:
    def test_batch_reads_each_block_exactly_once(self, cube):
        # Uncached sharded stack: the leaf read counter is the ground
        # truth for how many blocks the batch actually fetched.
        eng = ProPolyneEngine(
            cube, max_degree=1, block_size=7,
            storage=StorageSpec(shards=4),
        )
        evaluator = BatchEvaluator(eng)
        shared = evaluator.shared_block_count(OVERLAPPING)
        before = eng.store.io_snapshot()
        evaluator.evaluate_exact(OVERLAPPING)
        assert eng.store.io_since(before).reads == shared
        assert shared < evaluator.independent_block_count(OVERLAPPING)


class TestDegradedBatch:
    def make_stormy(self, cube):
        return ProPolyneEngine(
            cube, max_degree=1, block_size=7,
            storage=StorageSpec(
                shards=4,
                fault_plan=FaultPlan(seed=3, read_error_rate=1.0),
                fault_shards=(1,),
                retry_policy=RetryPolicy(
                    max_attempts=2, base_delay_s=0.0, budget_s=0.0
                ),
                breaker=CircuitBreaker(
                    failure_threshold=1, recovery_timeout_s=60.0
                ),
            ),
        )

    def test_fault_injected_shard_degrades_with_per_query_bounds(
        self, cube, engine
    ):
        stormy = self.make_stormy(cube)
        truths = [engine.evaluate_exact(q) for q in OVERLAPPING]
        outcomes = BatchEvaluator(stormy).evaluate_degradable(OVERLAPPING)
        assert len(outcomes) == len(OVERLAPPING)
        assert any(o.degraded for o in outcomes)
        for outcome, truth in zip(outcomes, truths):
            if outcome.degraded:
                assert outcome.reason == "storage_unavailable"
                assert outcome.blocks_skipped > 0
                assert math.isfinite(outcome.error_bound)
                assert outcome.error_bound > 0.0
                assert 0.0 <= outcome.error_estimate <= outcome.error_bound
                # The guaranteed bound really contains the truth.
                assert abs(outcome.value - truth) <= (
                    outcome.error_bound + 1e-9
                )
            else:
                assert outcome.value == truth  # bitwise

    def test_no_fault_degradable_batch_is_bitwise_exact(self, engine):
        outcomes = BatchEvaluator(engine).evaluate_degradable(OVERLAPPING)
        for outcome, query in zip(outcomes, OVERLAPPING):
            assert outcome.degraded is False
            assert outcome.error_bound == 0.0
            assert outcome.value == engine.evaluate_exact(query)


class TestServiceBatch:
    def test_submit_batch_thread_mode_bitwise_equal(self, engine):
        expected = [engine.evaluate_exact(q) for q in OVERLAPPING]
        with QueryService(engine, workers=2) as service:
            answers = service.submit_batch(OVERLAPPING, block=True).result()
        assert answers == expected

    def test_batch_and_exact_tasks_interleave(self, engine):
        single = RangeSumQuery.count([(3, 19), (8, 27)])
        with QueryService(engine, workers=2, queue_depth=8) as service:
            batch_future = service.submit_batch(DRILL_DOWN, block=True)
            exact_future = service.submit_exact(single, block=True)
            assert batch_future.result() == [
                engine.evaluate_exact(q) for q in DRILL_DOWN
            ]
            assert exact_future.result() == engine.evaluate_exact(single)

    def test_unknown_execution_mode_rejected(self, engine):
        with pytest.raises(QueryError):
            QueryService(engine, execution_mode="fiber")


class TestScanCoordinatorBulkFetch:
    def test_bulk_fetch_dedups_ids_within_one_call(self, engine):
        view = shared_scan_view(engine)
        coordinator = view.store.coordinator
        blocks = list(engine.store.device.block_ids())[:3]
        out = coordinator.fetch_blocks(blocks + blocks)
        assert set(out) == set(blocks)
        assert coordinator.fetches == len(blocks)
        assert sum(coordinator.fetches_by_shard.values()) == len(blocks)

    def test_bulk_fetch_joins_an_inflight_read(self, engine):
        view = shared_scan_view(engine)
        coordinator = view.store.coordinator
        blocks = list(engine.store.device.block_ids())[:2]
        target = blocks[0]
        key = (coordinator.namespace, coordinator._shard_of(target), target)
        flight = _Flight()
        flight.result = {"sentinel": 42.0}
        flight.event.set()
        coordinator._inflight[key] = flight
        try:
            out = coordinator.fetch_blocks(blocks)
        finally:
            coordinator._inflight.pop(key, None)
        # The in-flight block was shared, not re-read; the other block
        # was fetched from the store.
        assert out[target] == {"sentinel": 42.0}
        assert coordinator.shared == 1
        assert coordinator.fetches == len(blocks) - 1

    def test_concurrent_batches_share_flights_consistently(self, cube):
        eng = ProPolyneEngine(
            cube, max_degree=1, block_size=7,
            storage=StorageSpec(shards=2),
        )
        view = shared_scan_view(eng)
        coordinator = view.store.coordinator
        blocks = list(eng.store.device.block_ids())
        expected = {b: eng.store.fetch_block(b) for b in blocks}
        results, errors = [], []
        barrier = threading.Barrier(3)

        def fetch_all():
            barrier.wait()
            try:
                results.append(coordinator.fetch_blocks(blocks))
            except StorageError as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=fetch_all) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(results) == 3
        for out in results:
            assert out == expected


class TestProcessMode:
    """Spawned engine replicas must answer bitwise-identically.

    One worker and a small cube keep the spawn cost down; the scaling
    claim itself lives in ``benchmarks/bench_p5_batch.py``.
    """

    @pytest.fixture(scope="class")
    def small_engine(self):
        rng = np.random.default_rng(7)
        cube = rng.poisson(2.0, (16, 16)).astype(float)
        return ProPolyneEngine(
            cube, max_degree=1, block_size=7,
            storage=StorageSpec(shards=2),
        )

    def test_blueprint_replica_is_bitwise_identical(self, small_engine):
        from repro.query.procpool import blueprint_of

        replica = blueprint_of(small_engine).build()
        queries = [
            RangeSumQuery.count([(0, 9), (2, 13)]),
            RangeSumQuery.weighted([(3, 12), (0, 15)], {0: 1}),
        ]
        for query in queries:
            assert replica.evaluate_exact(
                query
            ) == small_engine.evaluate_exact(query)

    def test_process_service_bitwise_equal(self, small_engine):
        queries = [
            RangeSumQuery.count([(0, 9), (2, 13)]),
            RangeSumQuery.count([(4, 11), (4, 11)]),
        ]
        expected = [small_engine.evaluate_exact(q) for q in queries]
        with QueryService(
            small_engine, workers=1, execution_mode="process"
        ) as service:
            exact = [
                service.submit_exact(q, block=True).result()
                for q in queries
            ]
            batch = service.submit_batch(queries, block=True).result()
        assert exact == expected
        assert batch == expected

    def test_process_mode_rejects_faulty_spec(self):
        rng = np.random.default_rng(7)
        cube = rng.poisson(2.0, (16, 16)).astype(float)
        stormy = ProPolyneEngine(
            cube, max_degree=1, block_size=7,
            storage=StorageSpec(
                shards=2,
                fault_plan=FaultPlan(seed=1, read_error_rate=0.5),
                retry_policy=RetryPolicy(
                    max_attempts=2, base_delay_s=0.0, budget_s=0.0
                ),
                breaker=CircuitBreaker(
                    failure_threshold=1, recovery_timeout_s=60.0
                ),
            ),
        )
        with pytest.raises(QueryError):
            QueryService(stormy, workers=1, execution_mode="process")

    def test_spec_config_round_trip(self, small_engine):
        from repro.query.procpool import (
            portable_spec_config,
            spec_from_config,
        )

        config = portable_spec_config(small_engine.store.spec)
        rebuilt = spec_from_config(config)
        assert rebuilt.shards == small_engine.store.spec.shards
        assert rebuilt.cache_blocks == small_engine.store.spec.cache_blocks
