"""Wavelet synopses — the data-approximation baseline.

§3.3 of the AIMS paper contrasts ProPolyne's *query* approximation with the
then-dominant approach of approximating the *data*: keep only the B largest
wavelet coefficients of the dataset ([Vitter & Wang 1999] style) and answer
every query exactly against that lossy synopsis.  The paper's claim E4 is
that the data-approximation error "varies wildly with the dataset" while
query approximation is consistent; this module provides the baseline needed
to reproduce that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import TransformError
from repro.wavelets.tensor import tensor_wavedec, tensor_waverec

__all__ = ["WaveletSynopsis", "build_synopsis"]


@dataclass
class WaveletSynopsis:
    """A top-B wavelet coefficient synopsis of a data cube.

    Attributes:
        shape: Shape of the summarized cube.
        wavelet: Filter name used for the transform.
        entries: Mapping from flat (raveled) coefficient index to value —
            the B retained coefficients.
        dropped_energy: Squared L2 norm of the discarded coefficients; by
            orthonormality this is exactly the squared reconstruction error.
    """

    shape: tuple[int, ...]
    wavelet: str
    entries: dict[int, float]
    dropped_energy: float

    @property
    def size(self) -> int:
        """Number of retained coefficients."""
        return len(self.entries)

    def coefficient_array(self) -> np.ndarray:
        """Dense coefficient cube with dropped entries zeroed."""
        flat = np.zeros(int(np.prod(self.shape)))
        for idx, val in self.entries.items():
            flat[idx] = val
        return flat.reshape(self.shape)

    def reconstruct(self) -> np.ndarray:
        """Approximate data cube implied by the synopsis."""
        return tensor_waverec(self.coefficient_array(), self.wavelet)

    def dot_sparse(self, query_entries: dict[tuple[int, ...], float]) -> float:
        """Inner product with a sparse wavelet-domain query.

        Only coefficients retained in the synopsis contribute — this is how
        the data-approximation baseline answers ProPolyne-style queries.
        """
        strides = np.array(
            [int(np.prod(self.shape[k + 1 :])) for k in range(len(self.shape))]
        )
        total = 0.0
        for multi_idx, qval in query_entries.items():
            flat_idx = int(np.dot(multi_idx, strides))
            total += qval * self.entries.get(flat_idx, 0.0)
        return total


def build_synopsis(
    cube: np.ndarray, budget: int, wavelet: str = "haar"
) -> WaveletSynopsis:
    """Keep the ``budget`` largest-magnitude wavelet coefficients of ``cube``.

    Args:
        cube: Dense data cube.
        budget: Number of coefficients to retain, ``1 <= budget <= cube.size``.
        wavelet: Filter name.

    Returns:
        The synopsis, with exact dropped-energy bookkeeping.
    """
    data = np.asarray(cube, dtype=float)
    if not 1 <= budget <= data.size:
        raise TransformError(
            f"synopsis budget {budget} outside [1, {data.size}]"
        )
    coeffs = tensor_wavedec(data, wavelet)
    flat = coeffs.ravel()
    order = np.argsort(-np.abs(flat), kind="stable")
    keep = order[:budget]
    entries = {int(i): float(flat[i]) for i in keep}
    dropped = float(np.sum(np.square(flat[order[budget:]])))
    return WaveletSynopsis(
        shape=data.shape,
        wavelet=wavelet,
        entries=entries,
        dropped_energy=dropped,
    )
