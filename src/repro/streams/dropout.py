"""Sensor-dropout repair for frame streams.

Real glove/tracker sessions lose individual sensor channels for a few
ticks at a time (loose connector, radio glitch); the reading arrives as
NaN.  Downstream consumers — wavelet transforms, SVD similarity, the
adaptive sampler's spectral estimator — all assume finite values, so a
raw dropout would either crash the pipeline or silently poison every
coefficient it touches.

:class:`GapFiller` sits between a source and its consumer and repairs
gaps *causally* (hold last good value — the stream is single-pass, so
looking ahead is not an option).  Every repaired reading is counted, per
stream in :attr:`GapFiller.gaps_filled` and process-wide in the
``faults.sensor_dropouts`` counter, so an operator can tell a clean
session from a patched one (see ``docs/OPERATIONS.md``).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.obs import counter as obs_counter
from repro.streams.sample import Frame

__all__ = ["GapFiller"]


class GapFiller:
    """Wrap a frame iterable, replacing NaN readings with each sensor's
    last good value.

    A sensor that has never reported a finite value reads as
    ``fill_value`` (default ``0.0``) until its first good tick — the
    neutral choice for zero-centred sensor data, and explicit rather
    than silent: those repairs are counted too.

    Args:
        frames: Any iterable of :class:`~repro.streams.sample.Frame`
            (a :class:`~repro.streams.source.StreamSource` included).
        fill_value: Stand-in for sensors with no good reading yet.
    """

    def __init__(
        self, frames: Iterable[Frame], fill_value: float = 0.0
    ) -> None:
        self._frames = frames
        self._fill_value = float(fill_value)
        self.gaps_filled = 0
        self.frames_patched = 0

    def __iter__(self) -> Iterator[Frame]:
        last_good: np.ndarray | None = None
        dropouts = obs_counter("faults.sensor_dropouts")
        for frame in self._frames:
            values = frame.as_array()
            if last_good is None:
                last_good = np.full(values.shape, self._fill_value)
            gaps = ~np.isfinite(values)
            if gaps.any():
                n = int(gaps.sum())
                self.gaps_filled += n
                self.frames_patched += 1
                dropouts.inc(n)
                values = np.where(gaps, last_good, values)
                frame = Frame.from_array(frame.timestamp, values)
            last_good = values
            yield frame
