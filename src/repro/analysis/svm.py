"""A from-scratch support vector machine (simplified SMO).

§2.1 of the paper: "in our preliminary experiments, we successfully (with
86% accuracy) distinguished hyperactive kids from normal ones by using a
Support Vector Machine (SVM) on the motion speed of different trackers."
Experiment E7 re-runs that study on the simulated cohort; this module is
the classifier it uses — implemented here rather than imported, per the
no-external-ML-dependency rule of this reproduction.

The trainer is Platt's Sequential Minimal Optimization in its simplified
form: repeatedly pick a KKT-violating multiplier, pair it with a random
second multiplier, and solve the two-variable subproblem analytically.
Linear and RBF kernels are provided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import AIMSError

__all__ = ["SVM"]


class _AnalysisError(AIMSError):
    """Classifier misuse."""


def _linear_kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a @ b.T


def _rbf_kernel(gamma: float):
    def kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        aa = np.sum(a**2, axis=1)[:, None]
        bb = np.sum(b**2, axis=1)[None, :]
        return np.exp(-gamma * (aa + bb - 2 * (a @ b.T)))

    return kernel


@dataclass
class SVM:
    """Soft-margin binary SVM.

    Attributes:
        c: Box constraint (regularization strength).
        kernel: ``"linear"`` or ``"rbf"``.
        gamma: RBF width (ignored for linear).
        tol: KKT violation tolerance.
        max_passes: Passes without any update before SMO stops.
        seed: RNG seed for the second-multiplier choice (determinism).
    """

    c: float = 1.0
    kernel: str = "linear"
    gamma: float = 0.5
    tol: float = 1e-3
    max_passes: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.c <= 0:
            raise _AnalysisError(f"C must be positive, got {self.c}")
        if self.kernel not in ("linear", "rbf"):
            raise _AnalysisError(f"unknown kernel {self.kernel!r}")
        if self.kernel == "rbf" and self.gamma <= 0:
            raise _AnalysisError(f"gamma must be positive, got {self.gamma}")
        self._fitted = False

    def _kernel_fn(self):
        if self.kernel == "linear":
            return _linear_kernel
        return _rbf_kernel(self.gamma)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "SVM":
        """Train on features ``x`` and labels ``y`` in {-1, +1}.

        Returns self, fitted.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if x.ndim != 2 or x.shape[0] != y.size:
            raise _AnalysisError(
                f"bad training shapes: x {x.shape}, y {y.shape}"
            )
        labels = set(np.unique(y).tolist())
        if not labels <= {-1.0, 1.0} or len(labels) != 2:
            raise _AnalysisError(
                f"labels must be exactly {{-1, +1}}, got {sorted(labels)}"
            )
        n = x.shape[0]
        rng = np.random.default_rng(self.seed)
        gram = self._kernel_fn()(x, x)
        alpha = np.zeros(n)
        b = 0.0

        def decision(i: int) -> float:
            return float(np.dot(alpha * y, gram[:, i]) + b)

        passes = 0
        while passes < self.max_passes:
            changed = 0
            for i in range(n):
                err_i = decision(i) - y[i]
                if not (
                    (y[i] * err_i < -self.tol and alpha[i] < self.c)
                    or (y[i] * err_i > self.tol and alpha[i] > 0)
                ):
                    continue
                j = int(rng.integers(0, n - 1))
                if j >= i:
                    j += 1
                err_j = decision(j) - y[j]
                ai_old, aj_old = alpha[i], alpha[j]
                if y[i] != y[j]:
                    low = max(0.0, aj_old - ai_old)
                    high = min(self.c, self.c + aj_old - ai_old)
                else:
                    low = max(0.0, ai_old + aj_old - self.c)
                    high = min(self.c, ai_old + aj_old)
                if high - low < 1e-12:
                    continue
                eta = 2 * gram[i, j] - gram[i, i] - gram[j, j]
                if eta >= 0:
                    continue
                alpha[j] = np.clip(
                    aj_old - y[j] * (err_i - err_j) / eta, low, high
                )
                if abs(alpha[j] - aj_old) < 1e-7:
                    continue
                alpha[i] = ai_old + y[i] * y[j] * (aj_old - alpha[j])
                b1 = (
                    b - err_i
                    - y[i] * (alpha[i] - ai_old) * gram[i, i]
                    - y[j] * (alpha[j] - aj_old) * gram[i, j]
                )
                b2 = (
                    b - err_j
                    - y[i] * (alpha[i] - ai_old) * gram[i, j]
                    - y[j] * (alpha[j] - aj_old) * gram[j, j]
                )
                if 0 < alpha[i] < self.c:
                    b = b1
                elif 0 < alpha[j] < self.c:
                    b = b2
                else:
                    b = 0.5 * (b1 + b2)
                changed += 1
            passes = passes + 1 if changed == 0 else 0

        support = alpha > 1e-8
        self._support_x = x[support]
        self._support_y = y[support]
        self._support_alpha = alpha[support]
        self._b = float(b)
        self._fitted = True
        return self

    @property
    def n_support(self) -> int:
        """Number of support vectors (after fit)."""
        self._require_fitted()
        return int(self._support_x.shape[0])

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise _AnalysisError("SVM is not fitted; call fit() first")

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed margin for each row of ``x``."""
        self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        gram = self._kernel_fn()(x, self._support_x)
        return gram @ (self._support_alpha * self._support_y) + self._b

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Labels in {-1, +1} (ties go to +1)."""
        return np.where(self.decision_function(x) >= 0, 1.0, -1.0)
