"""P5 — batched vectorized evaluation and GIL-free execution modes.

PR 6's tentpole: break the ~4x throughput ceiling bench_p1 measured.
Three claims, all recorded in ``BENCH_p5.json`` (CI artifact):

1. **Single-thread batch speedup >= 5x.**  A heavily-overlapping batch
   (sliding drill-down windows) evaluated through
   :class:`~repro.query.batch.BatchEvaluator` — one coalesced
   ``read_many``, one gather, per-segment ``np.dot`` — against the
   sequential per-query loop on the same uncached sharded stack.
2. **8-worker batch throughput >= 6x one worker.**  Distinct batch
   tasks through ``QueryService.submit_batch`` in thread mode; each
   batch is one coalesced fetch whose simulated device sleeps overlap
   across workers (the fan-out pool is widened so concurrent batches
   don't serialize on it).
3. **Bitwise identity.**  Every batched answer equals the sequential
   ``evaluate_exact`` answer exactly — speed must not change a single
   bit.  A process-mode smoke run (spawned engine replica) is recorded
   too, without a perf gate.

The translation cache is pre-warmed before any timing: the measured
regime is I/O-bound evaluation, not first-touch query transformation.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.query.batch import BatchEvaluator
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery
from repro.query.service import QueryService
from repro.storage.device import StorageSpec
from repro.storage.latency import LatencyModel

from conftest import format_table

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_p5.json"

WORKER_COUNTS = (1, 2, 4, 8)
SINGLE_LATENCY_S = 0.001   # part 1: per block read, uncached
SCALING_LATENCY_S = 0.006  # part 2: deeper sleeps so fetches dominate
N_SCALING_BATCHES = 8


def make_cube() -> np.ndarray:
    rng = np.random.default_rng(2003)
    return rng.poisson(3.0, (64, 64)).astype(float)


def build_engine(latency_s: float, fanout_workers: int | None = None):
    """Uncached 4-shard stack: every block read pays the device latency."""
    return ProPolyneEngine(
        make_cube(), max_degree=1, block_size=7,
        storage=StorageSpec(
            shards=4,
            latency=LatencyModel(base_s=latency_s),
            fanout_workers=fanout_workers,
        ),
    )


def sliding_windows(row0: int, n_queries: int = 40) -> list[RangeSumQuery]:
    """Heavily-overlapping drill-down windows inside one row band.

    Consecutive windows shift by one cell, so nearly every block is
    shared across the batch — the regime §3.3.1's shared-I/O evaluation
    targets (group-by / drill-down traffic).
    """
    queries = []
    for k in range(n_queries):
        lo = (k % 16)
        queries.append(
            RangeSumQuery.count(
                [(row0 + (k % 8), row0 + 24 + (k % 8)),
                 (lo, lo + 32)]
            )
        )
    return queries


def run_single_thread(queries) -> dict:
    engine = build_engine(SINGLE_LATENCY_S)
    evaluator = BatchEvaluator(engine)
    # Warm the translation cache so both paths measure I/O + reduction.
    for query in queries:
        engine.query_entries(query)

    started = time.perf_counter()
    sequential = [engine.evaluate_exact(q) for q in queries]
    sequential_s = time.perf_counter() - started

    started = time.perf_counter()
    batched = evaluator.evaluate_exact(queries)
    batched_s = time.perf_counter() - started

    identical = sum(b == s for b, s in zip(batched, sequential))
    return {
        "queries": len(queries),
        "union_blocks": evaluator.shared_block_count(queries),
        "independent_blocks": evaluator.independent_block_count(queries),
        "sequential_s": round(sequential_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(sequential_s / batched_s, 2),
        "bitwise_identical": f"{identical}/{len(queries)}",
        "all_identical": identical == len(queries),
    }


def run_worker_scaling() -> dict:
    # One batch per row band; widened fan-out pool so 8 concurrent
    # batches (x 4 shard groups each) never queue behind each other.
    engine = build_engine(SCALING_LATENCY_S, fanout_workers=32)
    batches = [
        sliding_windows(row0, n_queries=12)
        for row0 in range(0, 8 * N_SCALING_BATCHES // 2, 4)
    ][:N_SCALING_BATCHES]
    for batch in batches:  # warm translation + compute ground truth once
        for query in batch:
            engine.query_entries(query)
    truths = [[engine.evaluate_exact(q) for q in batch] for batch in batches]

    runs = []
    identical_everywhere = True
    for workers in WORKER_COUNTS:
        with QueryService(
            engine, workers=workers, queue_depth=len(batches)
        ) as service:
            started = time.perf_counter()
            futures = [
                service.submit_batch(batch, block=True) for batch in batches
            ]
            answers = [f.result() for f in futures]
            elapsed = time.perf_counter() - started
        identical_everywhere &= answers == truths
        runs.append(
            {
                "workers": workers,
                "batches": len(batches),
                "queries": sum(len(b) for b in batches),
                "elapsed_s": round(elapsed, 4),
                "batches_per_s": round(len(batches) / elapsed, 2),
            }
        )
    by_workers = {r["workers"]: r for r in runs}
    return {
        "runs": runs,
        "speedup_8_vs_1": round(
            by_workers[1]["elapsed_s"] / by_workers[8]["elapsed_s"], 2
        ),
        "all_identical": identical_everywhere,
    }


def run_process_smoke() -> dict:
    """Spawned-replica smoke: correctness only, no perf gate (worker
    start-up dominates at this scale)."""
    rng = np.random.default_rng(7)
    cube = rng.poisson(2.0, (16, 16)).astype(float)
    engine = ProPolyneEngine(
        cube, max_degree=1, block_size=7, storage=StorageSpec(shards=2)
    )
    queries = [
        RangeSumQuery.count([(0, 9), (2, 13)]),
        RangeSumQuery.count([(4, 11), (4, 11)]),
    ]
    expected = [engine.evaluate_exact(q) for q in queries]
    with QueryService(
        engine, workers=1, execution_mode="process"
    ) as service:
        answers = service.submit_batch(queries, block=True).result()
    return {
        "workers": 1,
        "queries": len(queries),
        "all_identical": answers == expected,
    }


def run_benchmark() -> dict:
    single = run_single_thread(sliding_windows(row0=8))
    scaling = run_worker_scaling()
    process = run_process_smoke()
    payload = {
        "schema": "repro.bench/batch-v1",
        "single_latency_s": SINGLE_LATENCY_S,
        "scaling_latency_s": SCALING_LATENCY_S,
        "single_thread": single,
        "worker_scaling": scaling,
        "process_mode": process,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_p5_batch_execution(emit, benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    single = payload["single_thread"]
    scaling = payload["worker_scaling"]
    rows = [
        [r["workers"], r["batches"], f"{r['elapsed_s'] * 1e3:.0f}",
         r["batches_per_s"]]
        for r in scaling["runs"]
    ]
    emit(
        "P5_batch",
        format_table(
            ["workers", "batches", "elapsed ms", "batches/s"], rows
        )
        + f"\nsingle-thread batch speedup: {single['speedup']}x "
        f"({single['independent_blocks']} -> {single['union_blocks']} "
        f"blocks, {single['bitwise_identical']} bitwise identical)"
        + f"\n8-worker vs 1-worker: {scaling['speedup_8_vs_1']}x"
        + f"\nprocess-mode smoke identical: "
        f"{payload['process_mode']['all_identical']}"
        + f"\nJSON baseline written to {JSON_PATH.name}",
    )
    # The headline claims of PR 6:
    assert single["all_identical"], "batched answers must be bitwise exact"
    assert scaling["all_identical"], "scaling answers must be bitwise exact"
    assert payload["process_mode"]["all_identical"]
    assert single["speedup"] >= 5.0
    assert scaling["speedup_8_vs_1"] >= 6.0


if __name__ == "__main__":
    # Spawn-safe direct invocation: the process-mode smoke re-imports
    # __main__ in its worker, so everything above must be import-only.
    print(json.dumps(run_benchmark(), indent=2))
