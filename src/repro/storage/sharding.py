"""Sharded block device: the first scale-out axis of the storage engine.

:class:`ShardedDevice` stripes blocks across N inner
:class:`~repro.storage.device.BlockDevice` stacks by a deterministic
placement function — ``crc32(repr(block_id)) mod N`` — so the same
block id lands on the same shard in every process and every run, with
no placement table to persist (the rebalance-free determinism the
placement tests pin down).

Multi-block reads fan out across the shards touched via a small
transient worker pool, so with per-device latency the wall-clock cost
of a scan approaches ``blocks / shards`` device waits instead of
``blocks`` (the effect ``benchmarks/bench_p3_sharding.py`` measures).
Writes and single reads route directly to the owning shard.

Degradation is per-shard by construction: each shard's sub-stack
carries its own fault plan and circuit breaker
(:class:`~repro.storage.device.StorageSpec` clones the templates), so
one failed shard trips only its own breaker and queries over surviving
shards still answer — surfaced through the query layer's
``QueryOutcome`` degradation path.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Hashable, Iterable

from repro.core.errors import StorageError
from repro.lint.lockwatch import watched_lock
from repro.storage.disk import IOStats
from repro.storage.placement import place
from repro.storage.scheduler import coalesce_by_shard

# ``place`` lives in :mod:`repro.storage.placement` now (shared with the
# cluster tier's HashRing) and is re-exported here for compatibility.
__all__ = ["ShardedDevice", "place"]


class ShardedDevice:  # lint: ignore[obs-coverage] — pure fan-out; StorageSpec wraps it in a storage.device MeteredDevice
    """N inner block devices behind one :class:`BlockDevice` surface.

    Args:
        devices: The inner devices (typically per-shard middleware
            stacks built by :class:`~repro.storage.device.StorageSpec`),
            in shard order.
        fanout_workers: Worker-pool width for multi-block reads
            (default ``min(n_shards, 8)``); ``1`` forces sequential
            fan-out.
    """

    def __init__(self, devices, fanout_workers: int | None = None) -> None:
        self.devices = list(devices)
        if not self.devices:
            raise StorageError("a sharded device needs at least one shard")
        sizes = {d.block_size for d in self.devices}
        if len(sizes) != 1:
            raise StorageError(
                f"shards disagree on block size: {sorted(sizes)}"
            )
        self.n_shards = len(self.devices)
        if fanout_workers is not None and fanout_workers < 1:
            raise StorageError(
                f"fanout_workers must be >= 1, got {fanout_workers}"
            )
        self.fanout_workers = (
            fanout_workers
            if fanout_workers is not None
            else min(self.n_shards, 8)
        )
        # Persistent fan-out pool, created on the first concurrent
        # read_many and reused for the device's lifetime — the previous
        # per-call transient pool paid thread startup/teardown on the
        # hottest I/O path.
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = watched_lock("storage.shard_fanout")

    @property
    def block_size(self) -> int:
        """Item capacity of one block (uniform across shards)."""
        return self.devices[0].block_size

    def shard_of(self, block_id: Hashable) -> int:
        """Shard index owning a block id (deterministic across runs)."""
        return place(block_id, self.n_shards)

    def _device_for(self, block_id: Hashable):
        return self.devices[self.shard_of(block_id)]

    def read_block(self, block_id: Hashable):
        """Fetch one block from its owning shard."""
        return self._device_for(block_id).read_block(block_id)

    def read_block_shared(self, block_id: Hashable):
        """Shared (no-copy) fetch from the owning shard."""
        return self._device_for(block_id).read_block_shared(block_id)

    def _fanout_pool(self) -> ThreadPoolExecutor:
        """The persistent fan-out pool (created on first concurrent use)."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.fanout_workers,
                    thread_name_prefix="shard-read",
                )
            return self._pool

    def read_many(self, block_ids: Iterable[Hashable]) -> dict:
        """Fetch several blocks, fanning out across the shards touched.

        Blocks are coalesced into one ``read_many`` per owning shard
        (:func:`~repro.storage.scheduler.coalesce_by_shard`); when more
        than one shard (and more than one worker) is involved, each
        shard group runs on the device's persistent worker pool so
        per-device latency overlaps.  Failures propagate only after
        every group has settled — surviving shards' work is never
        discarded mid-flight — and when several shard groups fail, the
        first exception is raised with every further failure attached
        as a ``__notes__`` entry, so a multi-shard outage is never
        silently reported as a single-shard one.
        """
        groups = coalesce_by_shard(block_ids, self.shard_of)
        if not groups:
            return {}
        out: dict = {}
        if len(groups) == 1 or self.fanout_workers == 1:
            for shard, ids in groups:
                out.update(self.devices[shard].read_many(ids))
            return out
        pool = self._fanout_pool()
        futures = [
            (shard, pool.submit(self.devices[shard].read_many, ids))
            for shard, ids in groups
        ]
        errors: list[tuple[int, Exception]] = []
        for shard, future in futures:
            try:
                out.update(future.result())
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors.append((shard, exc))
        if errors:
            _, first = errors[0]
            for shard, exc in errors[1:]:
                first.add_note(
                    f"shard {shard} also failed: {type(exc).__name__}: {exc}"
                )
            raise first
        return out

    def close(self) -> None:
        """Shut down the persistent fan-out pool (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __del__(self) -> None:
        # Best-effort: __init__ may have raised before the pool existed.
        pool = getattr(self, "_pool", None)
        if pool is not None:
            # __del__ only runs once the object is unreachable, so no
            # concurrent writer exists; taking _pool_lock here could
            # deadlock a GC pass firing while the lock is held.
            self._pool = None  # lint: ignore[deep-lockset-race] -- unreachable in __del__
            pool.shutdown(wait=False)

    def write_block(self, block_id: Hashable, items) -> None:
        """Store one block on its owning shard."""
        self._device_for(block_id).write_block(block_id, items)

    def write_many(self, blocks: dict) -> None:
        """Store several blocks, fanning out across the shards touched.

        The write-side twin of :meth:`read_many`: the group is coalesced
        into one ``write_many`` per owning shard
        (:func:`~repro.storage.scheduler.coalesce_by_shard`), and when
        more than one shard (and more than one worker) is involved the
        shard groups run on the same persistent fan-out pool reads use,
        so per-device write latency overlaps.  Failures propagate only
        after every group has settled — surviving shards' commits are
        never abandoned mid-flight — and multiple shard failures are
        reported as the first exception with the rest attached as
        ``__notes__`` entries, exactly like the read path.
        """
        groups = coalesce_by_shard(blocks, self.shard_of)
        if not groups:
            return
        if len(groups) == 1 or self.fanout_workers == 1:
            for shard, ids in groups:
                self.devices[shard].write_many(
                    {b: blocks[b] for b in ids}
                )
            return
        pool = self._fanout_pool()
        futures = [
            (shard, pool.submit(
                self.devices[shard].write_many, {b: blocks[b] for b in ids}
            ))
            for shard, ids in groups
        ]
        errors: list[tuple[int, Exception]] = []
        for shard, future in futures:
            try:
                future.result()
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors.append((shard, exc))
        if errors:
            _, first = errors[0]
            for shard, exc in errors[1:]:
                first.add_note(
                    f"shard {shard} also failed: {type(exc).__name__}: {exc}"
                )
            raise first

    def has_block(self, block_id: Hashable) -> bool:
        """Existence check on the owning shard."""
        return self._device_for(block_id).has_block(block_id)

    def block_ids(self) -> list:
        """All allocated block ids, shard by shard."""
        out: list = []
        for device in self.devices:
            out.extend(device.block_ids())
        return out

    def n_blocks(self) -> int:
        """Total allocated blocks across all shards."""
        return sum(device.n_blocks() for device in self.devices)

    def occupancy(self) -> float:
        """Block-count-weighted mean occupancy across shards."""
        weighted = 0.0
        total = 0
        for device in self.devices:
            n = device.n_blocks()
            weighted += device.occupancy() * n
            total += n
        return weighted / total if total else 0.0

    def io_totals(self) -> IOStats:
        """Summed leaf I/O counters across all shards (copy)."""
        totals = IOStats()
        for device in self.devices:
            shard_io = device.io_totals()
            totals.reads += shard_io.reads
            totals.writes += shard_io.writes
        return totals

    def stats(self) -> dict:
        """Aggregate view plus every shard's nested layer statistics."""
        return {
            "layer": "sharded",
            "shards": self.n_shards,
            "placement": "crc32(repr(id)) % shards",
            "fanout_workers": self.fanout_workers,
            "blocks": self.n_blocks(),
            "io": {
                "reads": self.io_totals().reads,
                "writes": self.io_totals().writes,
            },
            "per_shard": [device.stats() for device in self.devices],
        }

    def __len__(self) -> int:
        return self.n_blocks()
