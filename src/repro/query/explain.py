"""Query plan inspection and audit provenance — EXPLAIN for ProPolyne.

A DBMS exposes its plans; so does this one.  :func:`explain` translates a
range-sum without executing it and reports what evaluation *would* cost:
the sparse transform size per dimension, the blocks touched, the
importance profile driving the progressive order, and the worst-case
guarantee available before any I/O.  :func:`format_plan` renders the
classic indented text plan.

The other half is looking *backwards*: :class:`QueryProvenance` is the
structured audit record of an answer already delivered — which storage
epoch answered, which blocks and shards were touched, the cache
generations and breaker states at answer time, and the degradation
story (reason, guaranteed bound, one-sigma forecast).  It serializes to
JSON (``repro.provenance/v1``, the schema table in ``docs/REPLAY.md``)
so a degraded or historical answer can be audited long after the
process that produced it is gone.  :func:`provenance_of` builds one,
:func:`attach_provenance` returns the outcome with it attached; the
query service attaches provenance to every degradable outcome.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace

import numpy as np

from repro.core.errors import QueryError
from repro.obs import counter as obs_counter
from repro.query.propolyne import ProPolyneEngine, QueryOutcome
from repro.query.rangesum import RangeSumQuery
from repro.storage.scheduler import plan_blocks
from repro.wavelets.lazy import lazy_range_query_transform

__all__ = [
    "PROVENANCE_SCHEMA",
    "QueryPlan",
    "QueryProvenance",
    "attach_provenance",
    "explain",
    "format_plan",
    "provenance_of",
]

#: Version tag carried by every serialized provenance record.
PROVENANCE_SCHEMA = "repro.provenance/v1"


@dataclass(frozen=True)
class QueryPlan:
    """Everything known about a query before executing it.

    Attributes:
        query: The planned range-sum.
        per_dim_coefficients: Sparse transform size per dimension.
        total_coefficients: Multivariate sparse size (the product).
        blocks_to_read: Block fetches an exact evaluation performs.
        a_priori_bound: Guaranteed |answer| ceiling before any I/O
            (the full Cauchy–Schwarz budget).
        top_block_share: Fraction of the bound budget carried by the
            single most valuable block — large values mean the
            progressive evaluation front-loads well.
        filter_name: Filter the engine evaluates under.
    """

    query: RangeSumQuery
    per_dim_coefficients: tuple[int, ...]
    total_coefficients: int
    blocks_to_read: int
    a_priori_bound: float
    top_block_share: float
    filter_name: str


def explain(engine: ProPolyneEngine, query: RangeSumQuery) -> QueryPlan:
    """Plan (but do not execute) a range-sum on a populated engine.

    Performs no data-block I/O: only the lazy query translation and the
    allocation metadata are consulted.
    """
    entries = engine.query_entries(query)
    per_dim = []
    for axis, ((lo, hi), poly) in enumerate(zip(query.ranges, query.polys)):
        if query.is_empty():
            per_dim.append(0)
            continue
        if engine.levels[axis] == 0:
            per_dim.append(max(0, hi - lo + 1))
        else:
            sparse = lazy_range_query_transform(
                list(poly), lo, hi, engine.shape[axis],
                wavelet=engine.filter, levels=engine.levels[axis],
            )
            per_dim.append(len(sparse))
    if not entries:
        return QueryPlan(
            query=query,
            per_dim_coefficients=tuple(per_dim),
            total_coefficients=0,
            blocks_to_read=0,
            a_priori_bound=0.0,
            top_block_share=0.0,
            filter_name=engine.filter.name,
        )
    plans = plan_blocks(entries, engine.store.allocation.block_of)
    budgets = [
        math.sqrt(sum(v * v for v in plan.entries.values()))
        * engine._block_norms.get(plan.block_id, 0.0)
        for plan in plans
    ]
    total_budget = float(sum(budgets))
    top_share = float(max(budgets) / total_budget) if total_budget > 0 else 0.0
    return QueryPlan(
        query=query,
        per_dim_coefficients=tuple(per_dim),
        total_coefficients=len(entries),
        blocks_to_read=len(plans),
        a_priori_bound=total_budget,
        top_block_share=top_share,
        filter_name=engine.filter.name,
    )


def format_plan(plan: QueryPlan) -> str:
    """Render a plan as the classic indented EXPLAIN text."""
    lines = [
        f"RangeSum over {len(plan.query.ranges)} dimensions "
        f"(max degree {plan.query.max_degree}, filter {plan.filter_name})",
    ]
    for d, ((lo, hi), count) in enumerate(
        zip(plan.query.ranges, plan.per_dim_coefficients)
    ):
        lines.append(
            f"  -> dim {d}: range [{lo}, {hi}], "
            f"{count} sparse coefficients"
        )
    lines.append(
        f"  => {plan.total_coefficients} multivariate coefficients on "
        f"{plan.blocks_to_read} blocks"
    )
    lines.append(
        f"  => a-priori bound {plan.a_priori_bound:.3g}; top block carries "
        f"{plan.top_block_share:.0%} of it"
    )
    return "\n".join(lines)


@dataclass(frozen=True)
class QueryProvenance:
    """Structured audit record of one delivered answer.

    Field-for-field, this is the ``repro.provenance/v1`` JSON schema
    documented in ``docs/REPLAY.md`` (a test asserts the two never
    drift).  Everything here is either recomputed deterministically
    from the query (block plan, shard placement) or snapshotted from
    the live store at attach time (breaker states, cache generations),
    so the record explains *why* an answer looks the way it does:
    a degraded value traces to an open breaker on a named shard; an
    as-of value names the epoch it reconstructed.

    Attributes:
        schema: Always :data:`PROVENANCE_SCHEMA`.
        epoch: Storage epoch the answer was evaluated against, or
            ``None`` for a live answer on an unversioned engine.
        current_epoch: The engine's epoch when provenance was built
            (equals ``epoch`` for live answers on versioned engines).
        degraded: Whether the answer fell short of exact.
        reason: ``None`` / ``"deadline"`` / ``"storage_unavailable"``.
        error_bound: Guaranteed ceiling on the answer's error.
        error_estimate: One-sigma probabilistic error forecast.
        blocks_read: Blocks actually fetched for the answer.
        blocks_skipped: Blocks skipped because storage was unavailable.
        blocks_planned: Blocks an exact evaluation would touch.
        blocks_by_shard: Planned block count per shard placement.
        breaker_states: Per-shard circuit-breaker state at attach time
            (``closed`` / ``half-open`` / ``open``).
        cache_generations: Per-shard caching-layer invalidation
            generation at attach time (a changed generation between
            two answers means the cache was invalidated in between).
        filter_name: Wavelet filter the engine evaluates under.
    """

    schema: str
    epoch: int | None
    current_epoch: int
    degraded: bool
    reason: str | None
    error_bound: float
    error_estimate: float
    blocks_read: int
    blocks_skipped: int
    blocks_planned: int
    blocks_by_shard: dict
    breaker_states: dict
    cache_generations: list
    filter_name: str

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready; dict keys become strings)."""
        return {
            "schema": self.schema,
            "epoch": self.epoch,
            "current_epoch": self.current_epoch,
            "degraded": self.degraded,
            "reason": self.reason,
            "error_bound": self.error_bound,
            "error_estimate": self.error_estimate,
            "blocks_read": self.blocks_read,
            "blocks_skipped": self.blocks_skipped,
            "blocks_planned": self.blocks_planned,
            "blocks_by_shard": {
                str(k): v for k, v in self.blocks_by_shard.items()
            },
            "breaker_states": {
                str(k): v for k, v in self.breaker_states.items()
            },
            "cache_generations": list(self.cache_generations),
            "filter_name": self.filter_name,
        }

    def to_json(self, indent: int | None = None) -> str:
        """Serialized audit record (the artifact CI uploads)."""
        return json.dumps(self.to_dict(), indent=indent)


def provenance_of(
    engine: ProPolyneEngine,
    query: RangeSumQuery,
    outcome: QueryOutcome,
    as_of: int | None = None,
) -> QueryProvenance:
    """Build the audit record for an already-delivered outcome.

    Performs no data-block I/O: the block plan and shard placement are
    recomputed from the (memoized) query translation and allocation
    metadata, and the breaker/cache state is read from the live store.

    Args:
        engine: The engine (or view) that produced ``outcome``.
        query: The range-sum that was evaluated.
        outcome: The delivered :class:`~repro.query.propolyne.QueryOutcome`.
        as_of: The epoch the evaluation was pinned to, if any.
    """
    entries = engine.query_entries(query)
    store = engine.store
    shard_of = getattr(store, "shard_of", None) or (lambda block_id: 0)
    blocks_by_shard: dict[int, int] = {}
    blocks_planned = 0
    if entries:
        plans = plan_blocks(entries, store.allocation.block_of)
        blocks_planned = len(plans)
        for plan in plans:
            shard = int(shard_of(plan.block_id))
            blocks_by_shard[shard] = blocks_by_shard.get(shard, 0) + 1
    breakers = getattr(store, "breakers", None) or []
    caches = getattr(store, "caches", None) or []
    log = getattr(engine, "_epoch_log", None)
    current_epoch = 0 if log is None else log.current
    epoch = as_of if as_of is not None else (
        None if log is None else current_epoch
    )
    obs_counter("provenance.records").inc()
    if outcome.degraded:
        obs_counter("provenance.degraded_records").inc()
    return QueryProvenance(
        schema=PROVENANCE_SCHEMA,
        epoch=epoch,
        current_epoch=current_epoch,
        degraded=outcome.degraded,
        reason=outcome.reason,
        error_bound=outcome.error_bound,
        error_estimate=outcome.error_estimate,
        blocks_read=outcome.blocks_read,
        blocks_skipped=outcome.blocks_skipped,
        blocks_planned=blocks_planned,
        blocks_by_shard=blocks_by_shard,
        breaker_states={
            i: breaker.state for i, breaker in enumerate(breakers)
        },
        cache_generations=[cache.generation for cache in caches],
        filter_name=engine.filter.name,
    )


def attach_provenance(
    engine: ProPolyneEngine,
    query: RangeSumQuery,
    outcome: QueryOutcome,
    as_of: int | None = None,
) -> QueryOutcome:
    """Return ``outcome`` with its :class:`QueryProvenance` attached."""
    return replace(
        outcome, provenance=provenance_of(engine, query, outcome, as_of)
    )
