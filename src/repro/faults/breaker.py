"""Circuit breaker: fail fast when storage is persistently down.

Retries absorb *transient* faults; when every attempt keeps failing the
fault is persistent, and burning a full retry budget per query turns a
dead disk into a pile-up of stalled workers.  The breaker converts that
regime into fast failures: after ``failure_threshold`` consecutive
failed operations it *opens* and rejects calls immediately (a
:class:`~repro.core.errors.StorageUnavailable` for the caller to
degrade on); after ``recovery_timeout_s`` it lets a limited number of
*half-open* probe operations through, closing again on the first
success and re-opening on a failed probe.

States and metrics::

    closed ──(threshold consecutive failures)──► open
      ▲                                            │ recovery timeout
      └──(probe succeeds)── half-open ◄────────────┘
                               │ probe fails → open again

``breaker.state`` gauge: 0 closed, 1 half-open, 2 open;
``breaker.trips`` / ``breaker.rejections`` counters.
"""

from __future__ import annotations

import time

from repro.core.errors import StorageError
from repro.lint.lockwatch import watched_lock
from repro.obs import counter as obs_counter
from repro.obs import gauge as obs_gauge

__all__ = ["CircuitBreaker"]

_STATE_LEVELS = {"closed": 0, "half-open": 1, "open": 2}


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open recovery probes.

    Thread-safe; one lock guards all state and is never held across a
    guarded call (the breaker only *decides*, callers do the I/O).

    Args:
        failure_threshold: Consecutive failed operations that trip the
            breaker open.
        recovery_timeout_s: Open dwell time before probes are allowed.
        half_open_probes: Concurrent probe operations admitted while
            half-open.
        clock: Injectable monotonic clock (tests pass a fake).
        name: Label used in error messages and snapshots.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_timeout_s: float = 1.0,
        half_open_probes: int = 1,
        clock=time.monotonic,
        name: str = "storage",
    ) -> None:
        if failure_threshold < 1:
            raise StorageError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_timeout_s < 0:
            raise StorageError(
                f"recovery_timeout_s must be >= 0, got {recovery_timeout_s}"
            )
        if half_open_probes < 1:
            raise StorageError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_timeout_s = recovery_timeout_s
        self.half_open_probes = half_open_probes
        self.name = name
        self._clock = clock
        self._lock = watched_lock("faults.breaker")
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.trips = 0
        self.rejections = 0

    def _publish_state(self) -> None:
        obs_gauge("breaker.state").set(_STATE_LEVELS[self._state])

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.  Open → half-open once the dwell passed.
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.recovery_timeout_s
        ):
            self._state = "half-open"
            self._probes_in_flight = 0

    @property
    def state(self) -> str:
        """Current state: ``"closed"``, ``"open"`` or ``"half-open"``."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """Admission check before a guarded operation.

        Returns False (counting a ``breaker.rejections``) when the call
        must fail fast; half-open admissions reserve a probe slot that
        :meth:`record_success` / :meth:`record_failure` releases.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return True
            if (
                self._state == "half-open"
                and self._probes_in_flight < self.half_open_probes
            ):
                self._probes_in_flight += 1
                return True
            self.rejections += 1
        obs_counter("breaker.rejections").inc()
        return False

    def record_success(self) -> None:
        """Report a guarded operation that completed; closes a half-open
        breaker and clears the consecutive-failure streak."""
        with self._lock:
            if self._state == "half-open":
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._state = "closed"
            self._consecutive_failures = 0
            self._publish_state()

    def record_failure(self) -> None:
        """Report a guarded operation that failed (after its retries);
        trips the breaker at the threshold or on a failed probe."""
        tripped = False
        with self._lock:
            self._maybe_half_open()
            if self._state == "half-open":
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                tripped = True
            else:
                self._consecutive_failures += 1
                tripped = (
                    self._state == "closed"
                    and self._consecutive_failures >= self.failure_threshold
                )
            if tripped:
                self._state = "open"
                self._opened_at = self._clock()
                self.trips += 1
            self._publish_state()
        if tripped:
            obs_counter("breaker.trips").inc()

    def snapshot(self) -> dict:
        """Operator view: state, streak, trip and rejection totals."""
        with self._lock:
            self._maybe_half_open()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "trips": self.trips,
                "rejections": self.rejections,
            }
