"""Shared fixtures and reporting helpers for the experiment benchmarks.

Every ``bench_eNN_*.py`` file regenerates one quantitative claim of the
AIMS paper (see DESIGN.md's experiment index).  Result tables are printed
*and* written to ``benchmarks/results/<experiment>.txt`` so the run leaves
an auditable record regardless of pytest's output capture.

Passing ``--metrics-json PATH`` additionally writes the observability
registry (every counter, gauge and histogram the run populated — see
``repro.obs``) as a machine-readable JSON sidecar when the session ends.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    """Register the ``--metrics-json`` sidecar flag."""
    parser.addoption(
        "--metrics-json",
        action="store",
        default=None,
        metavar="PATH",
        help="write the repro.obs metrics registry to PATH as JSON "
        "when the benchmark session finishes",
    )


def pytest_sessionfinish(session, exitstatus):
    """Emit the metrics sidecar if ``--metrics-json`` was given."""
    path = session.config.getoption("--metrics-json")
    if not path:
        return
    from repro.obs import get_registry, registry_to_dict

    payload = {
        "schema": "repro.obs/v1",
        "exitstatus": int(exitstatus),
        "metrics": registry_to_dict(get_registry()),
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.fixture(scope="session")
def emit():
    """``emit(experiment_id, text)``: print and persist a result table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(experiment_id: str, text: str) -> None:
        banner = f"==== {experiment_id} ===="
        print(f"\n{banner}\n{text}")
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def rng():
    """One deterministic generator per benchmark session."""
    return np.random.default_rng(2003)


# Re-exported so the existing ``from conftest import ...`` call sites
# keep working; the implementations live in the plain ``_util`` module.
from _util import fmt_ms, format_table, safe_percentile  # noqa: E402,F401
