"""Sliding and tumbling windows over frame streams.

§1.2 of the AIMS paper: continuous-data-stream "queries must be answered
based on limited amount of information rather than the entire dataset".
Windows are that limited information.  The adaptive sampler (§3.1) uses a
sliding window over recent activity; the online recognizer (§3.4) compares
a sliding window of frames against the vocabulary.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

import numpy as np

from repro.core.errors import StreamError
from repro.obs import counter as obs_counter
from repro.streams.sample import Frame, frames_to_matrix

__all__ = ["SlidingWindow", "sliding_windows", "tumbling_windows"]


class SlidingWindow:
    """A bounded FIFO of the most recent frames.

    Push frames as they arrive; read the current contents as a
    ``(time, sensors)`` matrix at any moment.  O(1) amortized per push.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise StreamError(f"window capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._frames: deque[Frame] = deque(maxlen=capacity)

    def push(self, frame: Frame) -> None:
        """Add a frame, evicting the oldest when full."""
        self._frames.append(frame)

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def full(self) -> bool:
        """True once capacity frames have been seen."""
        return len(self._frames) == self.capacity

    def frames(self) -> list[Frame]:
        """Current contents, oldest first."""
        return list(self._frames)

    def matrix(self) -> np.ndarray:
        """Current contents as a ``(len, sensors)`` matrix."""
        return frames_to_matrix(self.frames())

    def clear(self) -> None:
        """Drop all buffered frames (used after a pattern is isolated)."""
        self._frames.clear()

    @property
    def span(self) -> float:
        """Time covered by the buffered frames, in seconds."""
        if len(self._frames) < 2:
            return 0.0
        return self._frames[-1].timestamp - self._frames[0].timestamp


def sliding_windows(
    stream: Iterable[Frame], size: int, step: int = 1
) -> Iterator[list[Frame]]:
    """Yield overlapping windows of ``size`` frames every ``step`` frames.

    The first window is emitted once ``size`` frames have arrived; each
    subsequent window advances by ``step``.
    """
    if size <= 0 or step <= 0:
        raise StreamError(f"size and step must be positive, got {size}, {step}")
    emissions = obs_counter("streams.window_emissions")
    buffer: deque[Frame] = deque(maxlen=size)
    since_emit = step  # emit as soon as the first window fills
    for frame in stream:
        buffer.append(frame)
        if len(buffer) == size:
            if since_emit >= step:
                emissions.inc()
                yield list(buffer)
                since_emit = 0
            since_emit += 1


def tumbling_windows(
    stream: Iterable[Frame], size: int, drop_last: bool = False
) -> Iterator[list[Frame]]:
    """Yield non-overlapping windows of ``size`` frames.

    Args:
        stream: Input frames.
        size: Window length in frames.
        drop_last: When True, a trailing partial window is discarded;
            otherwise it is yielded as-is.
    """
    if size <= 0:
        raise StreamError(f"size must be positive, got {size}")
    emissions = obs_counter("streams.window_emissions")
    chunk: list[Frame] = []
    for frame in stream:
        chunk.append(frame)
        if len(chunk) == size:
            emissions.inc()
            yield chunk
            chunk = []
    if chunk and not drop_last:
        emissions.inc()
        yield chunk
