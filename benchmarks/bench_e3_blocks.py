"""E3 — §3.2.1: for block size B, the expected number of needed items per
retrieved block is below 1 + lg B, and error-tree subtree tiling
approaches that ceiling where naive allocations do not.

Workload: a full Haar decomposition of a length-2^14 signal; 200 random
point queries (root-to-leaf paths) and 200 random range-sums (boundary
path unions); block sizes B in {3, 7, 15, 31, 63}.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.storage.allocation import (
    depth_first_allocation,
    measure_utilization,
    point_query_workload,
    random_allocation,
    range_query_workload,
    sequential_allocation,
    subtree_tiling_allocation,
    utilization_bound,
)

from conftest import format_table

N = 2**14
BLOCK_SIZES = (3, 7, 15, 31, 63)


def run_study():
    rng = np.random.default_rng(3)
    workloads = {
        "point": point_query_workload(N, rng, count=200),
        "range": range_query_workload(N, rng, count=200),
    }
    rows = []
    measures = {}
    for block in BLOCK_SIZES:
        allocations = {
            "sequential": sequential_allocation(N, block),
            "depth_first": depth_first_allocation(N, block),
            "random": random_allocation(N, block, np.random.default_rng(9)),
            "tiling": subtree_tiling_allocation(N, block),
        }
        for workload_name, workload in workloads.items():
            cells = {}
            for alloc_name, alloc in allocations.items():
                cells[alloc_name] = measure_utilization(alloc, workload)
            measures[(block, workload_name)] = cells
            rows.append(
                [
                    block,
                    workload_name,
                    f"{cells['sequential']:.2f}",
                    f"{cells['depth_first']:.2f}",
                    f"{cells['random']:.2f}",
                    f"{cells['tiling']:.2f}",
                    f"{utilization_bound(block):.2f}",
                ]
            )
    return measures, rows


def test_e3_tiling_meets_bound(emit, benchmark):
    measures, rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    emit(
        "E3_block_utilization",
        format_table(
            ["B", "workload", "sequential", "depth_first", "random",
             "tiling", "1+lgB bound"],
            rows,
        ),
    )
    for (block, workload), cells in measures.items():
        # The theoretical ceiling holds for every allocation.
        for name, value in cells.items():
            assert value <= utilization_bound(block) + 1e-9, (
                f"{name} exceeded the bound at B={block}"
            )
        # Tiling dominates every baseline on both workloads.
        for baseline in ("sequential", "depth_first", "random"):
            assert cells["tiling"] >= cells[baseline] - 1e-9, (
                f"tiling lost to {baseline} at B={block}/{workload}"
            )
    # On point queries tiling sits near lg(B+1) — the ceiling's shape.
    for block in BLOCK_SIZES:
        got = measures[(block, "point")]["tiling"]
        assert got >= 0.55 * math.log2(block + 1)
