"""The concurrent query service: correctness under concurrency,
shared-scan deduplication, and admission control.

The load-bearing property: results produced by ``QueryService`` with any
worker count are *bitwise-equal* to single-threaded evaluation on the
same engine — translation, planning and summation are deterministic, and
the service only reads through the storage layer.
"""

import threading

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery
from repro.query.service import (
    QueryRejected,
    QueryService,
    ScanCoordinator,
    shared_scan_view,
)
from repro.storage.device import StorageSpec
from repro.storage.latency import LatencyModel


def build_engine(shape=(32, 32), pool_capacity=16, seed=7, latency_s=0.0):
    rng = np.random.default_rng(seed)
    cube = rng.poisson(3.0, shape).astype(float)
    storage = StorageSpec(
        cache_blocks=pool_capacity,
        latency=LatencyModel(base_s=latency_s) if latency_s else None,
    )
    return ProPolyneEngine(cube, max_degree=1, storage=storage)


def mixed_workload(engine, count=24, seed=11):
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        lo1 = int(rng.integers(0, 20))
        lo2 = int(rng.integers(0, 20))
        queries.append(
            RangeSumQuery.count(
                [(lo1, lo1 + int(rng.integers(2, 12))),
                 (lo2, lo2 + int(rng.integers(2, 12)))]
            )
        )
    return queries


class TestConcurrentCorrectness:
    def test_exact_results_bitwise_equal_to_single_threaded(self):
        engine = build_engine()
        queries = mixed_workload(engine)
        expected = [engine.evaluate_exact(q) for q in queries]
        with QueryService(engine, workers=4, queue_depth=64) as service:
            got = service.run_exact(queries)
        assert got == expected  # float equality, not approx

    def test_progressive_streams_bitwise_equal_to_single_threaded(self):
        engine = build_engine()
        queries = mixed_workload(engine, count=8)
        expected = [list(engine.evaluate_progressive(q)) for q in queries]
        with QueryService(engine, workers=4, queue_depth=64) as service:
            streams = [
                service.submit_progressive(q, block=True) for q in queries
            ]
            got = [list(s) for s in streams]
        assert got == expected
        for stream, estimates in zip(streams, got):
            assert stream.result() == estimates[-1]

    def test_stress_many_threads_submitting_concurrently(self):
        # >= 4 workers, plus several *submitting* threads, all racing on
        # one engine: every answer must match the serial reference.
        engine = build_engine(shape=(64, 32), pool_capacity=8)
        queries = mixed_workload(engine, count=40, seed=3)
        expected = {q: engine.evaluate_exact(q) for q in queries}
        failures = []
        with QueryService(engine, workers=6, queue_depth=128) as service:
            def hammer(chunk):
                try:
                    futures = [
                        service.submit_exact(q, block=True) for q in chunk
                    ]
                    for q, f in zip(chunk, futures):
                        if f.result(timeout=60) != expected[q]:
                            failures.append(q)
                except Exception as exc:  # surface in the main thread
                    failures.append(exc)

            submitters = [
                threading.Thread(target=hammer, args=(queries[i::4],))
                for i in range(4)
            ]
            for t in submitters:
                t.start()
            for t in submitters:
                t.join()
        assert failures == []

    def test_mixed_exact_and_progressive_traffic(self):
        engine = build_engine()
        queries = mixed_workload(engine, count=12, seed=5)
        exact_expected = [engine.evaluate_exact(q) for q in queries]
        with QueryService(engine, workers=4, queue_depth=64) as service:
            futures = [service.submit_exact(q, block=True) for q in queries]
            streams = [
                service.submit_progressive(q, block=True)
                for q in queries[:4]
            ]
            finals = [s.result(timeout=60) for s in streams]
            got = [f.result(timeout=60) for f in futures]
        assert got == exact_expected
        for final, q in zip(finals, queries[:4]):
            assert final.error_bound == pytest.approx(0.0, abs=1e-6)
            assert final.estimate == pytest.approx(engine.evaluate_exact(q))


class TestSharedScans:
    def test_single_flight_deduplicates_concurrent_reads(self):
        # Slow the device down so readers genuinely overlap.
        engine = build_engine(pool_capacity=None, latency_s=0.005)
        coordinator = ScanCoordinator(engine.store)
        block_id = engine.store.disk.block_ids()[0]
        before = engine.store.io_snapshot()
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    coordinator.fetch_block(block_id)
                )
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reads = engine.store.io_since(before).reads
        stats = coordinator.stats()
        assert len(results) == 8
        assert all(r == results[0] for r in results)
        assert stats["fetches"] + stats["shared"] == 8
        assert stats["shared"] >= 1  # at least one piggy-backed read
        assert reads == stats["fetches"]  # only leaders touch the device

    def test_follower_copies_are_independent(self):
        engine = build_engine(pool_capacity=None, latency_s=0.005)
        coordinator = ScanCoordinator(engine.store)
        block_id = engine.store.disk.block_ids()[0]
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    coordinator.fetch_block(block_id)
                )
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Followers share values but never the same mutable dictionary.
        assert len({id(r) for r in results}) == len(results)

    def test_shared_scan_view_matches_plain_store(self):
        engine = build_engine()
        view = shared_scan_view(engine)
        for query in mixed_workload(engine, count=6, seed=13):
            assert view.evaluate_exact(query) == engine.evaluate_exact(query)
            assert list(view.evaluate_progressive(query)) == list(
                engine.evaluate_progressive(query)
            )

    def test_scan_error_propagates_to_all_waiters(self):
        engine = build_engine(pool_capacity=None)
        coordinator = ScanCoordinator(engine.store)
        with pytest.raises(Exception):
            coordinator.fetch_block(("no", "such", "block"))
        assert coordinator._inflight == {}  # flight always cleaned up


class TestAdmissionControl:
    def test_overload_rejects_instead_of_queueing_unboundedly(self):
        engine = build_engine(latency_s=0.02)  # keep workers busy
        queries = mixed_workload(engine, count=50, seed=17)
        service = QueryService(engine, workers=1, queue_depth=2)
        try:
            rejected = 0
            futures = []
            for q in queries:
                try:
                    futures.append(service.submit_exact(q))
                except QueryRejected:
                    rejected += 1
            assert rejected > 0
            assert service.rejected == rejected
            # Admitted queries still finish correctly.
            for f in futures:
                assert isinstance(f.result(timeout=120), float)
        finally:
            service.close()

    def test_closed_service_refuses_new_work(self):
        engine = build_engine()
        service = QueryService(engine, workers=1)
        service.close()
        with pytest.raises(QueryError):
            service.submit_exact(RangeSumQuery.count([(0, 3), (0, 3)]))

    def test_invalid_configuration_rejected(self):
        engine = build_engine()
        with pytest.raises(QueryError):
            QueryService(engine, workers=0)
        with pytest.raises(QueryError):
            QueryService(engine, queue_depth=0)

    def test_query_error_delivered_through_future(self):
        engine = build_engine()
        bad = RangeSumQuery.count([(0, 500), (0, 3)])  # out of domain
        with QueryService(engine, workers=2) as service:
            future = service.submit_exact(bad, block=True)
            with pytest.raises(QueryError):
                future.result(timeout=60)
            stream = service.submit_progressive(bad, block=True)
            with pytest.raises(QueryError):
                list(stream)
