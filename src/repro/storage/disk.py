"""A simulated block device: the leaf layer of every device stack.

The storage claims of §3.2 are all statements about *which coefficients
share a disk block* and *how many blocks a query touches* — never about
a specific device.  This simulator therefore models exactly that:
fixed-size blocks addressed by id, with :class:`IOStats` counters every
experiment reads its I/O costs from.

Since the device-stack refactor this class is deliberately dumb: no
cache hooks (coherence lives in
:class:`~repro.storage.device.CachingDevice`), no metrics registry calls
(a :class:`~repro.storage.device.MeteredDevice` directly above the leaf
emits ``storage.disk.*``), no fault logic (middleware), and payloads are
opaque — dictionaries are capacity-checked and defensively copied, while
byte frames (from a CRC layer above) are stored as-is.

Thread safety: the block directory and :class:`IOStats` counters are
guarded by one device lock; the simulated latency sleep happens after
the lock is released, so concurrent reads overlap their seek time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.core.errors import StorageError
from repro.lint.lockwatch import watched_lock
from repro.obs.stats import StatsBase
from repro.storage.latency import LatencyModel

__all__ = ["IOStats", "SimulatedDisk"]


@dataclass
class IOStats(StatsBase):
    """Counters for one device (or one measurement interval).

    ``reset``/``snapshot``/``delta`` come from the shared
    :class:`repro.obs.stats.StatsBase` protocol, so device I/O differs
    the same way every other stats bundle does.
    """

    reads: int = 0
    writes: int = 0


@dataclass
class SimulatedDisk:  # lint: ignore[obs-coverage] — deliberately dumb leaf; storage.disk.* metering is the MeteredDevice directly above
    """Leaf block device: block id -> payload.

    Payloads are either dictionaries from item key (e.g. flat
    coefficient index) to value — ``block_size`` bounds how many items
    one block may carry, mirroring a real device's fixed block capacity
    — or opaque byte frames written by a CRC layer above (stored
    untouched; capacity is then that layer's business).  ``latency``
    is an optional :class:`~repro.storage.latency.LatencyModel` whose
    per-read delay (base seek time plus seeded spikes) is slept outside
    the device lock; the legacy ``latency_s`` float is accepted and
    folded into a model.
    """

    block_size: int
    latency_s: float = 0.0
    latency: LatencyModel | None = None
    _blocks: dict[Hashable, object] = field(default_factory=dict)
    io: IOStats = field(default_factory=IOStats)

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise StorageError(
                f"block size must be positive, got {self.block_size}"
            )
        if self.latency_s < 0:
            raise StorageError(
                f"read latency must be >= 0, got {self.latency_s}"
            )
        if self.latency is None and self.latency_s > 0.0:
            self.latency = LatencyModel(base_s=self.latency_s)
        # Guards the block directory and the IOStats counters; never
        # held while sleeping simulated latency.
        self._lock = watched_lock("storage.disk")

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    def write_block(self, block_id: Hashable, items) -> None:
        """Store (or overwrite) one block.

        A dictionary payload is capacity-checked and stored as a fresh
        copy that is never mutated in place afterwards (subsequent
        writes replace it), so readers that already hold the previous
        payload keep a consistent pre-write snapshot.  Non-dict payloads
        (encoded byte frames) are stored as-is — bytes are immutable.
        """
        if isinstance(items, dict):
            if len(items) > self.block_size:
                raise StorageError(
                    f"block {block_id!r}: {len(items)} items exceed "
                    f"block size {self.block_size}"
                )
            payload: object = dict(items)
        else:
            payload = items
        with self._lock:
            self._blocks[block_id] = payload
            self.io.writes += 1

    def _fetch(self, block_id: Hashable):
        with self._lock:
            try:
                block = self._blocks[block_id]
            except KeyError:
                raise StorageError(f"no such block {block_id!r}") from None
            self.io.reads += 1
        if self.latency is not None:
            self.latency.sleep()
        return block

    def read_block(self, block_id: Hashable):
        """Fetch one block, counting the I/O.  The caller owns the
        returned payload (dictionaries are copied; bytes are immutable)."""
        block = self._fetch(block_id)
        return dict(block) if isinstance(block, dict) else block

    def read_block_shared(self, block_id: Hashable):
        """Fetch one block without copying, counting the I/O.

        Returns the device's internal payload, which MUST be treated as
        immutable: the device never mutates stored payloads in place
        (:meth:`write_block` replaces them), so sharing is safe for
        readers that also never mutate — the caching layer uses this to
        avoid one copy per miss.
        """
        return self._fetch(block_id)

    def read_many(self, block_ids: Iterable[Hashable]) -> dict:
        """Fetch several blocks; returns ``{block_id: payload}``."""
        return {b: self.read_block(b) for b in block_ids}

    def write_many(self, blocks: dict) -> None:
        """Store several blocks; ``blocks`` maps block id to payload.

        Each member is written (and counted in :class:`IOStats`) exactly
        like a :meth:`write_block` call, in group order.
        """
        for block_id, items in blocks.items():
            self.write_block(block_id, items)

    def has_block(self, block_id: Hashable) -> bool:
        """Existence check (no I/O charged — directory metadata)."""
        with self._lock:
            return block_id in self._blocks

    def block_ids(self) -> list[Hashable]:
        """All allocated block ids (no I/O charged)."""
        with self._lock:
            return list(self._blocks)

    def n_blocks(self) -> int:
        """Number of allocated blocks."""
        return len(self)

    def occupancy(self) -> float:
        """Mean fraction of block item-capacity in use.

        Counts dictionary payloads only; opaque byte frames are scored
        by the CRC layer that knows their item counts.
        """
        with self._lock:
            counted = [
                len(b) for b in self._blocks.values() if isinstance(b, dict)
            ]
            if not counted:
                return 0.0
            return sum(counted) / (len(counted) * self.block_size)

    def io_totals(self) -> IOStats:
        """Cumulative I/O counters (copy) for before/after differencing."""
        with self._lock:
            return self.io.snapshot()

    def stats(self) -> dict:
        """Leaf-device statistics (innermost entry of a stack report)."""
        with self._lock:
            return {
                "layer": "disk",
                "block_size": self.block_size,
                "blocks": len(self._blocks),
                "reads": self.io.reads,
                "writes": self.io.writes,
            }
