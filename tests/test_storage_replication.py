"""Tests for the per-shard replication layer.

:class:`~repro.storage.replication.ReplicatedDevice` turns member
outages into failover instead of degradation.  The invariants pinned
here: writes fan in to every member, reads fail over (and promote) to
in-sync replicas, stale members never serve reads, the in-sync set
never empties, and the ``replicas=`` spec field builds the whole thing
declaratively with answers bitwise-identical to an unreplicated stack.
"""

import pytest

from repro.core.errors import StorageError
from repro.faults import CircuitBreaker, FaultPlan, RetryPolicy
from repro.storage.device import DeviceStack, StorageSpec
from repro.storage.disk import SimulatedDisk
from repro.storage.replication import ReplicatedDevice

PAYLOADS = {
    0: {0: 1.5, 1: -2.25},
    1: {8: 4.0},
    2: {16: 0.125, 17: 9.0},
}


class FlakyMember:
    """Member wrapper that fails reads/writes on demand (OSError —
    the unavailability family the device treats as a member failure)."""

    def __init__(self, inner):
        self.inner = inner
        self.fail_reads = False
        self.fail_writes = False

    @property
    def block_size(self):
        return self.inner.block_size

    def _gate(self, failing, op):
        if failing:
            raise OSError(f"injected {op} failure")

    def read_block(self, block_id):
        self._gate(self.fail_reads, "read")
        return self.inner.read_block(block_id)

    def read_block_shared(self, block_id):
        self._gate(self.fail_reads, "read")
        return self.inner.read_block_shared(block_id)

    def read_many(self, block_ids):
        self._gate(self.fail_reads, "read")
        return self.inner.read_many(block_ids)

    def write_block(self, block_id, items):
        self._gate(self.fail_writes, "write")
        self.inner.write_block(block_id, items)

    def write_many(self, blocks):
        self._gate(self.fail_writes, "write")
        self.inner.write_many(blocks)

    def has_block(self, block_id):
        return self.inner.has_block(block_id)

    def block_ids(self):
        return self.inner.block_ids()

    def n_blocks(self):
        return self.inner.n_blocks()

    def occupancy(self):
        return self.inner.occupancy()

    def io_totals(self):
        return self.inner.io_totals()

    def stats(self):
        return self.inner.stats()


def group(n_members=2, block_size=8):
    members = [
        FlakyMember(SimulatedDisk(block_size=block_size))
        for _ in range(n_members)
    ]
    return ReplicatedDevice(members), members


class TestConstruction:
    def test_needs_at_least_two_members(self):
        with pytest.raises(StorageError):
            ReplicatedDevice([SimulatedDisk(block_size=8)])

    def test_members_must_agree_on_block_size(self):
        with pytest.raises(StorageError):
            ReplicatedDevice(
                [SimulatedDisk(block_size=8), SimulatedDisk(block_size=4)]
            )

    def test_breaker_count_must_match(self):
        members = [SimulatedDisk(block_size=8) for _ in range(2)]
        with pytest.raises(StorageError):
            ReplicatedDevice(members, breakers=[None])


class TestWriteFanIn:
    def test_every_member_holds_every_write(self):
        device, members = group(3)
        for block_id, items in PAYLOADS.items():
            device.write_block(block_id, items)
        for member in members:
            for block_id, items in PAYLOADS.items():
                assert member.inner.read_block(block_id) == items
        assert device.n_blocks() == len(PAYLOADS)

    def test_write_many_group_commits_to_all(self):
        device, members = group(2)
        device.write_many(PAYLOADS)
        for member in members:
            assert member.inner.read_many(list(PAYLOADS)) == PAYLOADS

    def test_failed_member_goes_stale_and_primary_survives(self):
        device, members = group(3)
        device.write_block(0, PAYLOADS[0])
        members[1].fail_writes = True
        device.write_block(1, PAYLOADS[1])
        assert device.stale_members() == [1]
        assert device.primary == 0
        # The stale member missed the write; the others hold it.
        assert not members[1].inner.has_block(1)
        assert members[2].inner.read_block(1) == PAYLOADS[1]

    def test_stale_primary_hands_off_to_a_survivor(self):
        device, members = group(2)
        members[0].fail_writes = True
        device.write_block(0, PAYLOADS[0])
        assert device.stale_members() == [0]
        assert device.primary == 1

    def test_in_sync_set_never_empties(self):
        device, members = group(2)
        device.write_block(0, PAYLOADS[0])
        for member in members:
            member.fail_writes = True
        with pytest.raises(OSError):
            device.write_block(1, PAYLOADS[1])
        # Refused to stale the last complete copies.
        assert device.stale_members() == []
        assert device.primary == 0


class TestReadFailover:
    def test_primary_failure_fails_over_and_promotes(self):
        device, members = group(2)
        device.write_many(PAYLOADS)
        members[0].fail_reads = True
        assert device.read_block(0) == PAYLOADS[0]
        assert device.primary == 1
        # Subsequent reads go straight to the promoted member.
        assert device.read_block(1) == PAYLOADS[1]

    def test_read_many_fails_over_as_a_whole_group(self):
        device, members = group(2)
        device.write_many(PAYLOADS)
        members[0].fail_reads = True
        assert device.read_many(list(PAYLOADS)) == PAYLOADS
        assert device.primary == 1

    def test_all_members_failing_raises_the_first_error(self):
        device, members = group(2)
        device.write_many(PAYLOADS)
        for member in members:
            member.fail_reads = True
        with pytest.raises(OSError):
            device.read_block(0)

    def test_stale_members_never_serve_reads(self):
        device, members = group(2)
        device.write_block(0, PAYLOADS[0])
        members[1].fail_writes = True
        device.write_block(1, PAYLOADS[1])  # member 1 goes stale
        members[1].fail_writes = False
        members[0].fail_reads = True
        # Member 1 is the only other member but it is stale: the read
        # must fail rather than return possibly-missing data.
        with pytest.raises(OSError):
            device.read_block(1)

    def test_open_breaker_promotes_proactively(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout_s=1e9,
            clock=lambda: clock[0],
        )
        members = [
            FlakyMember(SimulatedDisk(block_size=8)) for _ in range(2)
        ]
        device = ReplicatedDevice(members, breakers=[breaker, None])
        device.write_many(PAYLOADS)
        breaker.record_failure()
        assert breaker.state == "open"
        assert device.read_block(0) == PAYLOADS[0]
        assert device.primary == 1
        # The dead member's sub-stack was never touched by the read.


class TestPromotionAndResync:
    def test_manual_promote(self):
        device, _ = group(3)
        device.promote(2)
        assert device.primary == 2
        device.promote(2)  # idempotent
        assert device.primary == 2

    def test_promote_validates(self):
        device, members = group(2)
        with pytest.raises(StorageError):
            device.promote(5)
        members[1].fail_writes = True
        device.write_block(0, PAYLOADS[0])
        with pytest.raises(StorageError):
            device.promote(1)  # stale

    def test_resync_restores_stale_members(self):
        device, members = group(2)
        device.write_block(0, PAYLOADS[0])
        members[1].fail_writes = True
        device.write_block(1, PAYLOADS[1])
        members[1].fail_writes = False
        assert device.resync() == 1
        assert device.stale_members() == []
        assert members[1].inner.read_block(1) == PAYLOADS[1]
        # Restored member serves reads again.
        members[0].fail_reads = True
        assert device.read_block(1) == PAYLOADS[1]

    def test_resync_without_stale_members_is_a_noop(self):
        device, _ = group(2)
        device.write_many(PAYLOADS)
        assert device.resync() == 0

    def test_stats_report_replication_state(self):
        device, members = group(2)
        device.write_block(0, PAYLOADS[0])
        members[1].fail_writes = True
        device.write_block(1, PAYLOADS[1])
        stats = device.stats()
        assert stats["layer"] == "replicated"
        assert stats["members"] == 2
        assert stats["primary"] == 0
        assert stats["stale"] == [1]
        assert len(stats["per_member"]) == 2


class TestSpecIntegration:
    def test_stack_builds_replicated_layer(self):
        stack = DeviceStack([
            ("replicated", {"replicas": 2}),
            ("disk", {"block_size": 8}),
        ])
        device = stack.build()
        assert isinstance(device, ReplicatedDevice)
        assert device.n_members == 3
        for block_id, items in PAYLOADS.items():
            device.write_block(block_id, items)
        for block_id, items in PAYLOADS.items():
            assert device.read_block(block_id) == items

    def test_replicated_layer_validates_replicas(self):
        with pytest.raises(StorageError):
            DeviceStack([
                ("replicated", {"replicas": 0}),
                ("disk", {"block_size": 8}),
            ]).build()

    def test_spec_replicas_build_and_answer_identically(self):
        plain = StorageSpec(metered=False).build(block_size=8)
        replicated = StorageSpec(
            metered=False, replicas=1
        ).build(block_size=8)
        for block_id, items in PAYLOADS.items():
            plain.device.write_block(block_id, items)
            replicated.device.write_block(block_id, items)
        for block_id in PAYLOADS:
            assert (replicated.device.read_block(block_id)
                    == plain.device.read_block(block_id))
        assert len(replicated.replica_groups) == 1
        assert plain.replica_groups == []

    def test_spec_validates_fault_replicas(self):
        with pytest.raises(StorageError):
            StorageSpec(replicas=1, fault_replicas=(2,))
        with pytest.raises(StorageError):
            StorageSpec(replicas=-1)

    def test_per_member_breakers_are_independent_clones(self):
        built = StorageSpec(
            metered=False, shards=2, replicas=1,
            breaker=CircuitBreaker(failure_threshold=3),
            retry_policy=RetryPolicy(max_attempts=1),
        ).build(block_size=8)
        # Shard-major, member-minor: 2 shards x 2 members.
        assert len(built.breakers) == 4
        assert len(set(map(id, built.breakers))) == 4

    def test_kill_primary_drill_heals_to_exact_answers(self):
        spec = StorageSpec(
            metered=False,
            replicas=1,
            fault_plan=FaultPlan(seed=9, read_error_rate=1.0),
            fault_replicas=(0,),
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay_s=0.0, budget_s=0.0
            ),
            breaker=CircuitBreaker(
                failure_threshold=3, recovery_timeout_s=1e9
            ),
        )
        built = spec.build(block_size=8)
        built.set_injecting(False)
        for block_id, items in PAYLOADS.items():
            built.device.write_block(block_id, items)
        built.set_injecting(True)
        (group_device,) = built.replica_groups
        # Every primary read fails; the replica answers exactly.
        for block_id, items in PAYLOADS.items():
            assert built.device.read_block(block_id) == items
        assert group_device.primary == 1

    def test_resync_replicas_sums_over_shards(self):
        built = StorageSpec(metered=False, replicas=1).build(block_size=8)
        for block_id, items in PAYLOADS.items():
            built.device.write_block(block_id, items)
        assert built.resync_replicas() == 0
