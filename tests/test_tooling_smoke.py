"""Smoke tests for the observability and resilience tooling surface.

Exercises the operator entry points end to end, in subprocesses, the
way CI does: the ``aims stats`` CLI report (text and JSON forms), the
``aims chaos`` resilience drill, and the benchmark harness's
``--metrics-json`` sidecar.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run(*argv, timeout=180):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, *argv],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestStatsCommand:
    def test_stats_json_parses_and_is_populated(self):
        proc = _run("-m", "repro.cli", "stats", "--json")
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert set(report) == {"counters", "gauges", "histograms", "spans"}
        for name in (
            "storage.disk.reads",
            "storage.pool.hits",
            "query.exact.queries",
            "query.service.submitted",
            "query.service.completed",
            "wavelets.transcache.hits",
            "wavelets.transcache.misses",
            "streams.frames_ingested",
            "recognizer.decisions",
        ):
            assert report["counters"].get(name, 0) > 0, name
        assert 0.0 < report["gauges"].get("storage.pool.occupancy", 0.0) <= 1.0
        assert report["histograms"]["query.blocks_per_query"]["count"] >= 1
        assert report["spans"]  # at least one retained root span

    def test_stats_text_report_renders(self):
        proc = _run("-m", "repro.cli", "stats")
        assert proc.returncode == 0, proc.stderr
        for section in ("counters", "histograms", "spans"):
            assert section in proc.stdout
        assert "storage.pool.hits" in proc.stdout
        assert "storage.pool.occupancy" in proc.stdout
        assert "wavelets.transcache" in proc.stdout
        assert "query.service" in proc.stdout
        # The resilience drill's series and the breaker-state line.
        assert "retry.attempts" in proc.stdout
        assert "faults.injected.read_errors" in proc.stdout
        assert "breaker 'storage':" in proc.stdout


class TestChaosCommand:
    def test_chaos_drill_exits_zero_under_faults(self):
        proc = _run("-m", "repro.cli", "chaos", "--fault-rate", "0.05")
        assert proc.returncode == 0, proc.stderr
        assert "chaos drill" in proc.stdout
        assert "breaker" in proc.stdout
        assert "5% read-fault rate" in proc.stdout

    def test_chaos_fault_free_control_run(self):
        proc = _run("-m", "repro.cli", "chaos", "--fault-rate", "0")
        assert proc.returncode == 0, proc.stderr
        assert "degraded        : 0/" in proc.stdout

    def test_chaos_rejects_out_of_range_rate(self):
        proc = _run("-m", "repro.cli", "chaos", "--fault-rate", "0.9")
        assert proc.returncode == 2
        assert "fault-rate" in proc.stderr


class TestMetricsSidecar:
    def test_benchmark_writes_parseable_sidecar(self, tmp_path):
        sidecar = tmp_path / "metrics.json"
        proc = _run(
            "-m",
            "pytest",
            "benchmarks/bench_a4_bufferpool.py",
            "-q",
            "--no-header",
            "-p",
            "no:cacheprovider",
            f"--metrics-json={sidecar}",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(sidecar.read_text())
        assert payload["schema"] == "repro.obs/v1"
        assert payload["exitstatus"] == 0
        metrics = payload["metrics"]
        assert metrics["counters"].get("storage.disk.reads", 0) > 0
        assert metrics["counters"].get("storage.pool.hits", 0) > 0
