"""Tests for wavelet filter construction (repro.wavelets.filters)."""

import math

import numpy as np
import pytest

from repro.core.errors import TransformError
from repro.wavelets.filters import WaveletFilter, daubechies, get_filter, haar


# Published Daubechies db2 scaling coefficients (extremal phase).
DB2_REFERENCE = np.array(
    [
        (1 + math.sqrt(3)) / (4 * math.sqrt(2)),
        (3 + math.sqrt(3)) / (4 * math.sqrt(2)),
        (3 - math.sqrt(3)) / (4 * math.sqrt(2)),
        (1 - math.sqrt(3)) / (4 * math.sqrt(2)),
    ]
)


class TestHaar:
    def test_taps(self):
        filt = haar()
        assert filt.length == 2
        np.testing.assert_allclose(filt.lowpass, [1 / math.sqrt(2)] * 2)

    def test_highpass_is_qmf(self):
        filt = haar()
        np.testing.assert_allclose(
            filt.highpass, [1 / math.sqrt(2), -1 / math.sqrt(2)]
        )

    def test_orthonormal(self):
        haar().check_orthonormal()

    def test_one_vanishing_moment(self):
        filt = haar()
        assert abs(filt.moment(0, highpass=True)) < 1e-12
        # Haar does NOT kill linear signals.
        assert abs(filt.moment(1, highpass=True)) > 0.1


class TestDaubechies:
    def test_db2_matches_published_coefficients(self):
        filt = daubechies(2)
        np.testing.assert_allclose(filt.lowpass, DB2_REFERENCE, atol=1e-12)

    @pytest.mark.parametrize("p", [2, 3, 4, 5, 6, 8])
    def test_orthonormality(self, p):
        daubechies(p).check_orthonormal(tol=1e-7)

    @pytest.mark.parametrize("p", [2, 3, 4, 5, 6])
    def test_vanishing_moments(self, p):
        filt = daubechies(p)
        for order in range(p):
            assert abs(filt.moment(order, highpass=True)) < 1e-6, (
                f"db{p} moment {order} should vanish"
            )

    @pytest.mark.parametrize("p", [2, 3, 4])
    def test_first_nonvanishing_moment(self, p):
        filt = daubechies(p)
        assert abs(filt.moment(p, highpass=True)) > 1e-4

    def test_tap_count(self):
        for p in (2, 3, 4, 7):
            assert daubechies(p).length == 2 * p

    def test_lowpass_sums_to_sqrt2(self):
        for p in (1, 2, 5):
            assert abs(sum(daubechies(p).dec_lo) - math.sqrt(2)) < 1e-9

    def test_invalid_order(self):
        with pytest.raises(TransformError):
            daubechies(0)

    def test_caching_returns_same_object(self):
        assert daubechies(4) is daubechies(4)


class TestGetFilter:
    def test_haar_aliases(self):
        assert get_filter("haar").name == "haar"
        assert get_filter("db1").name == "haar"

    def test_db_names(self):
        assert get_filter("db3").vanishing_moments == 3
        assert get_filter("DB4").vanishing_moments == 4

    @pytest.mark.parametrize("bad", ["", "wavelet", "dbx", "sym4"])
    def test_unknown_names(self, bad):
        with pytest.raises(TransformError):
            get_filter(bad)


class TestWaveletFilterValidation:
    def test_odd_tap_count_rejected(self):
        with pytest.raises(TransformError):
            WaveletFilter("bad", (0.5, 0.5, 0.5), vanishing_moments=1)

    def test_non_orthonormal_detected(self):
        filt = WaveletFilter("lying", (0.9, 0.1), vanishing_moments=1)
        with pytest.raises(TransformError):
            filt.check_orthonormal()

    def test_moment_lowpass(self):
        filt = haar()
        # sum h[m] * m = 1/sqrt(2) * (0 + 1)
        assert abs(filt.moment(1) - 1 / math.sqrt(2)) < 1e-12
