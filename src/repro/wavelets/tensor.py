"""Tensor-product (multivariate) wavelet transforms.

AIMS stores a multidimensional immersidata relation as a *data cube* — a
d-dimensional array of measure values or frequencies — transformed by the
standard tensor-product construction: the 1-D periodized transform is
applied independently along every axis.  Because each axis transform is
orthogonal, the composite is orthogonal too, so multivariate inner products
(and hence multivariate polynomial range-sums) are preserved.

The companion fact ProPolyne uses: the transform of a separable query
``q(x1, .., xd) = q1(x1) * ... * qd(xd)`` is the outer product of the 1-D
transforms, so a sparse per-dimension lazy transform yields a sparse
multivariate query.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import TransformError
from repro.wavelets.dwt import max_levels, wavedec, waverec, WaveletCoefficients
from repro.wavelets.filters import WaveletFilter, get_filter

__all__ = ["tensor_wavedec", "tensor_waverec", "tensor_levels"]


def tensor_levels(
    shape: tuple[int, ...], filt: WaveletFilter
) -> tuple[int, ...]:
    """Maximum cascade depth along each axis of ``shape``."""
    return tuple(max_levels(n, filt) for n in shape)


def tensor_wavedec(
    cube: np.ndarray,
    wavelet: str | WaveletFilter = "haar",
    levels: tuple[int, ...] | None = None,
) -> np.ndarray:
    """Transform every axis of ``cube``, returning a same-shape array.

    Each axis ends up in the flat error-tree layout of
    :meth:`WaveletCoefficients.to_flat`, so entry ``[i1, .., id]`` of the
    result is the coefficient pairing flat index ``i_k`` on axis ``k`` —
    exactly the indexing the sparse multivariate query uses.

    Args:
        cube: Dense d-dimensional data array.
        wavelet: Filter name or instance.
        levels: Per-axis cascade depth; defaults to per-axis maximum.

    Returns:
        Coefficient array with the same shape as ``cube``.
    """
    filt = wavelet if isinstance(wavelet, WaveletFilter) else get_filter(wavelet)
    data = np.asarray(cube, dtype=float)
    if levels is None:
        levels = tensor_levels(data.shape, filt)
    if len(levels) != data.ndim:
        raise TransformError(
            f"levels has {len(levels)} entries for a {data.ndim}-d cube"
        )
    out = data.copy()
    for axis, depth in enumerate(levels):
        if depth == 0:
            continue

        def decompose(vec: np.ndarray, depth: int = depth) -> np.ndarray:
            return wavedec(vec, filt, levels=depth).to_flat()

        out = np.apply_along_axis(decompose, axis, out)
    return out


def tensor_waverec(
    coeffs: np.ndarray,
    wavelet: str | WaveletFilter = "haar",
    levels: tuple[int, ...] | None = None,
) -> np.ndarray:
    """Exact inverse of :func:`tensor_wavedec` (same ``levels``)."""
    filt = wavelet if isinstance(wavelet, WaveletFilter) else get_filter(wavelet)
    data = np.asarray(coeffs, dtype=float)
    if levels is None:
        levels = tensor_levels(data.shape, filt)
    if len(levels) != data.ndim:
        raise TransformError(
            f"levels has {len(levels)} entries for a {data.ndim}-d cube"
        )
    out = data.copy()
    for axis, depth in enumerate(levels):
        if depth == 0:
            continue

        def invert(vec: np.ndarray, depth: int = depth) -> np.ndarray:
            bundle = WaveletCoefficients.from_flat(vec, depth, filt.name)
            return waverec(bundle)

        out = np.apply_along_axis(invert, axis, out)
    return out
