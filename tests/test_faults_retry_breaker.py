"""RetryPolicy backoff properties and CircuitBreaker state machine.

The retry schedule is the pipeline's worst-case latency contract, so
its properties are asserted exhaustively over a grid of policies:
monotone growth, per-sleep ceiling, bounded jitter, and the hard total
budget.  The breaker tests drive the closed / open / half-open machine
with a fake clock — no real sleeping.
"""

import itertools
import random

import pytest

from repro.core.errors import StorageError, StorageUnavailable
from repro.faults import CircuitBreaker, ResilientCaller, RetryPolicy
from repro.faults.plan import InjectedReadError


def policy_grid():
    """A small property-test grid over the policy parameter space."""
    attempts = (1, 2, 4, 7)
    bases = (0.0, 0.001, 0.02)
    multipliers = (1.0, 1.5, 3.0)
    jitters = (0.0, 0.1, 0.5)
    for a, b, m, j in itertools.product(attempts, bases, multipliers, jitters):
        yield RetryPolicy(
            max_attempts=a, base_delay_s=b, multiplier=m,
            max_delay_s=0.05, jitter=j, budget_s=0.1,
        )


class TestRetryPolicyProperties:
    def test_validation(self):
        with pytest.raises(StorageError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(StorageError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(StorageError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(StorageError):
            RetryPolicy(base_delay_s=-1.0)

    def test_base_delays_monotone_capped_and_budgeted(self):
        for policy in policy_grid():
            delays = policy.base_delays()
            assert len(delays) <= policy.max_attempts - 1
            assert all(d <= policy.max_delay_s + 1e-12 for d in delays)
            assert sum(delays) <= policy.budget_s + 1e-9
            # Monotone non-decreasing except possibly the final
            # budget-clipped entry.
            body = delays[:-1]
            assert all(x <= y + 1e-12 for x, y in zip(body, body[1:]))

    def test_jittered_delays_bounded_by_jitter_fraction(self):
        for policy in policy_grid():
            base = [
                min(policy.base_delay_s * policy.multiplier**k,
                    policy.max_delay_s)
                for k in range(policy.max_attempts - 1)
            ]
            jittered = policy.delays(random.Random(99))
            assert len(jittered) <= len(base)
            spent = 0.0
            for raw, actual in zip(base, jittered):
                # Below the budget cut, each sleep lies in
                # [base, base * (1 + jitter)].
                upper = raw * (1.0 + policy.jitter)
                assert actual <= min(upper, policy.budget_s - spent) + 1e-12
                assert actual >= min(raw, policy.budget_s - spent) - 1e-12
                spent += actual
            assert spent <= policy.budget_s + 1e-9

    def test_delays_replay_for_equal_policies(self):
        a = RetryPolicy(seed=5)
        b = RetryPolicy(seed=5)
        assert a.delays() == b.delays()
        assert a.delays() == a.delays()  # fresh RNG per call

    def test_budget_clips_long_schedules(self):
        policy = RetryPolicy(
            max_attempts=50, base_delay_s=0.01, multiplier=1.0,
            max_delay_s=0.01, jitter=0.0, budget_s=0.035,
        )
        delays = policy.base_delays()
        assert sum(delays) == pytest.approx(0.035)
        assert len(delays) == 4  # 3 full sleeps + one clipped remainder


class TestRetryExecute:
    def test_recovers_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise InjectedReadError("transient")
            return "ok"

        slept = []
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.001, jitter=0.0)
        assert policy.execute(flaky, sleep=slept.append) == "ok"
        assert len(calls) == 3
        assert slept == policy.base_delays()[:2]

    def test_gives_up_after_schedule_and_reraises(self):
        def always_fails():
            raise InjectedReadError("still down")

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        with pytest.raises(InjectedReadError):
            policy.execute(always_fails, sleep=lambda _d: None)

    def test_non_transient_errors_propagate_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("caller bug")

        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        with pytest.raises(ValueError):
            policy.execute(broken, sleep=lambda _d: None)
        assert len(calls) == 1

    def test_on_retry_hook_sees_attempts_and_errors(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise InjectedReadError("x")
            return 1

        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0)
        policy.execute(
            flaky, sleep=lambda _d: None,
            on_retry=lambda attempt, exc: seen.append((attempt, type(exc))),
        )
        assert seen == [(1, InjectedReadError), (2, InjectedReadError)]


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=kwargs.pop("failure_threshold", 3),
            recovery_timeout_s=kwargs.pop("recovery_timeout_s", 1.0),
            clock=clock,
            **kwargs,
        )
        return breaker, clock

    def test_validation(self):
        with pytest.raises(StorageError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(StorageError):
            CircuitBreaker(recovery_timeout_s=-1.0)
        with pytest.raises(StorageError):
            CircuitBreaker(half_open_probes=0)

    def test_trips_after_threshold_consecutive_failures(self):
        breaker, _clock = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow()
        assert breaker.rejections == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_after_timeout_then_closes_on_probe_success(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.state == "half-open"
        assert breaker.allow()        # the probe slot
        assert not breaker.allow()    # no second probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        # The dwell restarts from the failed probe.
        clock.advance(0.5)
        assert not breaker.allow()
        clock.advance(0.5)
        assert breaker.allow()

    def test_snapshot_reports_operator_view(self):
        breaker, _clock = self.make(name="teststore")
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap == {
            "name": "teststore",
            "state": "closed",
            "consecutive_failures": 1,
            "trips": 0,
            "rejections": 0,
        }


class TestResilientCaller:
    def test_wraps_exhausted_retries_as_storage_unavailable(self):
        caller = ResilientCaller(
            RetryPolicy(max_attempts=2, base_delay_s=0.0), None
        )

        def always_fails():
            raise InjectedReadError("down")

        with pytest.raises(StorageUnavailable):
            caller.call(always_fails)

    def test_breaker_opens_then_fails_fast_without_calling(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_timeout_s=1.0, clock=clock
        )
        caller = ResilientCaller(None, breaker)
        calls = []

        def always_fails():
            calls.append(1)
            raise InjectedReadError("down")

        for _ in range(2):
            with pytest.raises(StorageUnavailable):
                caller.call(always_fails)
        assert len(calls) == 2
        with pytest.raises(StorageUnavailable):
            caller.call(always_fails)
        assert len(calls) == 2  # rejected before the callable ran

    def test_success_path_passes_result_through(self):
        caller = ResilientCaller(RetryPolicy(max_attempts=3), CircuitBreaker())
        assert caller.call(lambda: {"a": 1.0}) == {"a": 1.0}

    def test_non_transient_errors_do_not_count_against_breaker(self):
        breaker = CircuitBreaker(failure_threshold=1)
        caller = ResilientCaller(None, breaker)

        def broken():
            raise KeyError("missing")

        with pytest.raises(KeyError):
            caller.call(broken)
        assert breaker.state == "closed"
