"""Tests for the ProPolyne engine: exactness, progressivity, error bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import QueryError
from repro.query.propolyne import ProPolyneEngine, pad_to_pow2
from repro.query.rangesum import RangeSumQuery, evaluate_on_cube


RNG = np.random.default_rng(61)


@pytest.fixture(scope="module")
def cube_1d():
    return RNG.normal(size=64) + 2.0


@pytest.fixture(scope="module")
def cube_2d():
    return np.abs(RNG.normal(size=(32, 32)))


@pytest.fixture(scope="module")
def engine_1d(cube_1d):
    return ProPolyneEngine(cube_1d, max_degree=2, block_size=7)


@pytest.fixture(scope="module")
def engine_2d(cube_2d):
    return ProPolyneEngine(cube_2d, max_degree=2, block_size=7)


class TestPadding:
    def test_already_dyadic(self):
        cube = np.ones((8, 16))
        np.testing.assert_array_equal(pad_to_pow2(cube), cube)

    def test_pads_with_zeros(self):
        cube = np.ones((5, 9))
        padded = pad_to_pow2(cube)
        assert padded.shape == (8, 16)
        assert padded.sum() == cube.sum()

    def test_padding_preserves_range_sums(self):
        cube = RNG.normal(size=(13,))
        engine = ProPolyneEngine(cube, max_degree=0, block_size=3)
        q = RangeSumQuery.count([(2, 9)])
        assert engine.evaluate_exact(q) == pytest.approx(
            evaluate_on_cube(cube, q)
        )


class TestExactEvaluation:
    @pytest.mark.parametrize(
        "lo,hi", [(0, 63), (5, 40), (17, 17), (0, 0), (62, 63)]
    )
    def test_count_1d(self, cube_1d, engine_1d, lo, hi):
        q = RangeSumQuery.count([(lo, hi)])
        assert engine_1d.evaluate_exact(q) == pytest.approx(
            evaluate_on_cube(cube_1d, q), rel=1e-9, abs=1e-9
        )

    def test_sum_1d(self, cube_1d, engine_1d):
        q = RangeSumQuery.weighted([(3, 50)], {0: 1})
        assert engine_1d.evaluate_exact(q) == pytest.approx(
            evaluate_on_cube(cube_1d, q)
        )

    def test_quadratic_1d(self, cube_1d, engine_1d):
        q = RangeSumQuery.weighted([(3, 50)], {0: 2})
        assert engine_1d.evaluate_exact(q) == pytest.approx(
            evaluate_on_cube(cube_1d, q)
        )

    def test_count_2d(self, cube_2d, engine_2d):
        q = RangeSumQuery.count([(4, 20), (1, 30)])
        assert engine_2d.evaluate_exact(q) == pytest.approx(
            evaluate_on_cube(cube_2d, q)
        )

    def test_cross_term_2d(self, cube_2d, engine_2d):
        q = RangeSumQuery.weighted([(2, 25), (3, 28)], {0: 1, 1: 1})
        assert engine_2d.evaluate_exact(q) == pytest.approx(
            evaluate_on_cube(cube_2d, q), rel=1e-7
        )

    def test_empty_query(self, engine_1d):
        assert engine_1d.evaluate_exact(RangeSumQuery.count([(5, 2)])) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(
        lo1=st.integers(0, 31),
        w1=st.integers(0, 31),
        lo2=st.integers(0, 31),
        w2=st.integers(0, 31),
        degree=st.integers(0, 2),
    )
    def test_exactness_property(self, cube_2d, engine_2d, lo1, w1, lo2, w2, degree):
        hi1, hi2 = min(31, lo1 + w1), min(31, lo2 + w2)
        q = RangeSumQuery.weighted([(lo1, hi1), (lo2, hi2)], {0: degree})
        got = engine_2d.evaluate_exact(q)
        want = evaluate_on_cube(cube_2d, q)
        assert got == pytest.approx(want, rel=1e-6, abs=1e-6)


class TestSparsity:
    def test_query_coefficient_count_polylog(self):
        counts = []
        for log_n in (8, 10, 12):
            cube = np.ones(2**log_n)
            engine = ProPolyneEngine(cube, max_degree=0, block_size=7)
            q = RangeSumQuery.count([(3, 2**log_n - 5)])
            counts.append(engine.n_query_coefficients(q))
        assert counts[-1] < 2**8  # far below n = 2^12
        diffs = np.diff(counts)
        assert all(d < 40 for d in diffs)  # ~O(filter taps) per level

    def test_2d_count_is_product_of_1d_counts(self, engine_2d):
        q = RangeSumQuery.count([(4, 20), (1, 30)])
        entries = engine_2d.query_entries(q)
        rows = {i for i, _ in entries}
        cols = {j for _, j in entries}
        assert len(entries) <= len(rows) * len(cols)


class TestProgressiveEvaluation:
    def test_final_estimate_is_exact(self, cube_2d, engine_2d):
        q = RangeSumQuery.count([(3, 29), (5, 25)])
        estimates = list(engine_2d.evaluate_progressive(q))
        assert estimates[-1].estimate == pytest.approx(
            evaluate_on_cube(cube_2d, q)
        )
        assert estimates[-1].error_bound == pytest.approx(0.0, abs=1e-9)

    def test_error_bound_is_guaranteed(self, cube_2d, engine_2d):
        q = RangeSumQuery.weighted([(3, 29), (5, 25)], {0: 1})
        exact = evaluate_on_cube(cube_2d, q)
        for est in engine_2d.evaluate_progressive(q):
            assert abs(est.estimate - exact) <= est.error_bound + 1e-6

    def test_bounds_monotone_nonincreasing(self, engine_2d):
        q = RangeSumQuery.count([(0, 31), (8, 23)])
        bounds = [
            e.error_bound for e in engine_2d.evaluate_progressive(q)
        ]
        assert all(b2 <= b1 + 1e-9 for b1, b2 in zip(bounds, bounds[1:]))

    def test_importance_order_converges_fast(self, cube_2d, engine_2d):
        """Half the blocks should already give a far better estimate than
        the proportional share — the progressive promise of §3.3."""
        q = RangeSumQuery.count([(2, 29), (2, 29)])
        exact = evaluate_on_cube(cube_2d, q)
        estimates = list(engine_2d.evaluate_progressive(q))
        halfway = estimates[len(estimates) // 2]
        denom = abs(exact) or 1.0
        assert abs(halfway.estimate - exact) / denom < 0.05

    def test_blocks_read_counts_io(self, engine_2d):
        q = RangeSumQuery.count([(3, 29), (5, 25)])
        before = engine_2d.store.io_snapshot()
        estimates = list(engine_2d.evaluate_progressive(q))
        reads = engine_2d.store.io_since(before).reads
        assert reads == estimates[-1].blocks_read

    def test_empty_query_single_step(self, engine_1d):
        steps = list(engine_1d.evaluate_progressive(RangeSumQuery.count([(5, 2)])))
        assert len(steps) == 1
        assert steps[0].estimate == 0.0

    def test_approximate_budget(self, engine_2d):
        q = RangeSumQuery.count([(3, 29), (5, 25)])
        est = engine_2d.evaluate_approximate(q, block_budget=3)
        assert est.blocks_read <= 3
        with pytest.raises(QueryError):
            engine_2d.evaluate_approximate(q, block_budget=0)


class TestValidation:
    def test_degree_exceeds_filter(self, engine_1d):
        q = RangeSumQuery.weighted([(0, 10)], {0: 3})  # engine max_degree=2
        with pytest.raises(QueryError):
            engine_1d.evaluate_exact(q)

    def test_dimension_mismatch(self, engine_2d):
        with pytest.raises(QueryError):
            engine_2d.evaluate_exact(RangeSumQuery.count([(0, 5)]))

    def test_range_out_of_domain(self, engine_1d):
        with pytest.raises(QueryError):
            engine_1d.evaluate_exact(RangeSumQuery.count([(0, 64)]))

    def test_negative_max_degree(self):
        with pytest.raises(QueryError):
            ProPolyneEngine(np.ones(16), max_degree=-1)

    def test_tiny_axis_rejected(self):
        with pytest.raises(QueryError):
            ProPolyneEngine(np.ones(2), max_degree=2)  # db3 needs length 8


class TestUpdates:
    def test_append_only_update_changes_answers(self):
        """The CDS append path: a coefficient update flows into results."""
        cube = np.zeros(32)
        cube[:16] = 1.0
        engine = ProPolyneEngine(cube, max_degree=0, block_size=3)
        q = RangeSumQuery.count([(0, 31)])
        assert engine.evaluate_exact(q) == pytest.approx(16.0)
        # Re-populating with one more tuple at position 20 == adding the
        # wavelet transform of a unit impulse; emulate via fresh engine.
        cube[20] += 1.0
        engine2 = ProPolyneEngine(cube, max_degree=0, block_size=3)
        assert engine2.evaluate_exact(q) == pytest.approx(17.0)
