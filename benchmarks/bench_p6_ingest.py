"""P6 — hundred-scale batched ingestion.

PR 7's tentpole: make the *write* side scale the way PR 6 made the
read side scale.  Four claims, all recorded in ``BENCH_p6.json`` (CI
artifact):

1. **Single-thread batch-append speedup >= 5x at batch 256.**  256
   weighted points through :class:`~repro.query.ingest.BatchInserter`
   (one coalesced ``read_many`` + one group-commit ``write_many`` per
   touched-block union) against 256 sequential ``insert`` calls on an
   identical uncached sharded stack.
2. **Bitwise identity.**  After both runs, every stored coefficient is
   equal with ``==`` — the batch path must not drift a single ulp.
3. **>= 100 concurrent sessions, bounded lag, zero loss.**  120 live
   sessions feed one :class:`~repro.streams.ingest.IngestService`;
   every recorded sample must be committed (count re-derived from the
   cube itself) and the commit queue must drain to empty.
4. **Degrade-don't-drop under overload, recover on drain.**  A
   deliberately tiny queue with a slow device forces sustained
   pressure: the :class:`~repro.streams.ingest.BandwidthCoordinator`
   must cap rates (``ingest.degraded_rate_seconds`` > 0), commit every
   recorded sample anyway, and restore full rates once drained.  The
   same section replays ingestion over a 5%-write-fault device (with
   the device stack's retry policy) and requires zero data loss.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.acquisition.streaming import StreamingAdaptiveSampler
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.obs import MetricsRegistry, use_registry
from repro.query.ingest import BatchInserter
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery
from repro.storage.device import StorageSpec
from repro.storage.latency import LatencyModel
from repro.streams import BandwidthCoordinator, IngestService

from conftest import format_table

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_p6.json"

BATCH_SIZE = 256
APPEND_LATENCY_S = 0.0005  # per block I/O on the append comparison stack
N_SESSIONS = 120
TICKS_PER_SESSION = 25
SENSORS_PER_SESSION = 2
CUBE_SHAPE = (64, 64)


def make_cube() -> np.ndarray:
    rng = np.random.default_rng(2007)
    return rng.poisson(3.0, CUBE_SHAPE).astype(float)


def build_engine(latency_s: float = 0.0, **spec_kwargs):
    """4-shard uncached stack; nonzero latency makes I/O count."""
    if latency_s:
        spec_kwargs.setdefault("latency", LatencyModel(base_s=latency_s))
    return ProPolyneEngine(
        make_cube(), max_degree=1, block_size=7,
        storage=StorageSpec(shards=4, **spec_kwargs),
    )


def _all_coefficients(engine) -> dict:
    return {
        block_id: engine.store.fetch_block(block_id)
        for block_id in sorted(engine._block_norms)
    }


def _to_point(sample):
    return (
        int(sample.sensor_id) % CUBE_SHAPE[0],
        int(min(CUBE_SHAPE[1] - 1, abs(sample.value) * 8)),
    )


def run_batch_append() -> dict:
    """Claims 1 + 2: sequential vs batched append, bitwise-compared."""
    rng = np.random.default_rng(11)
    points = [
        tuple(map(int, rng.integers(0, CUBE_SHAPE[0], 2)))
        for _ in range(BATCH_SIZE)
    ]
    points += points[: BATCH_SIZE // 8]  # real traffic revisits cells
    weights = list(rng.normal(loc=1.0, size=len(points)))

    sequential_engine = build_engine(APPEND_LATENCY_S)
    started = time.perf_counter()
    for point, weight in zip(points, weights):
        sequential_engine.insert(point, weight)
    sequential_s = time.perf_counter() - started

    batched_engine = build_engine(APPEND_LATENCY_S)
    inserter = BatchInserter(batched_engine)
    started = time.perf_counter()
    touched = inserter.insert_batch(points, weights)
    batched_s = time.perf_counter() - started

    seq_coeffs = _all_coefficients(sequential_engine)
    bat_coeffs = _all_coefficients(batched_engine)
    total = sum(len(block) for block in seq_coeffs.values())
    identical = sum(
        1
        for block_id in seq_coeffs
        for key, value in seq_coeffs[block_id].items()
        if bat_coeffs[block_id][key] == value
    )
    sequential_engine.store.close()
    batched_engine.store.close()
    return {
        "points": len(points),
        "distinct_coefficients_touched": touched,
        "sequential_s": round(sequential_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(sequential_s / batched_s, 2),
        "bitwise_identical": f"{identical}/{total}",
        "all_identical": identical == total,
    }


def run_many_sessions() -> dict:
    """Claim 3: 120 concurrent sessions, bounded lag, zero loss."""
    engine = build_engine()
    service = IngestService(
        engine, queue_capacity=4096, commit_batch=BATCH_SIZE
    )
    rng = np.random.default_rng(23)
    started = time.perf_counter()
    with service:
        sessions = [
            service.open_session(
                f"s{i}",
                StreamingAdaptiveSampler(
                    width=SENSORS_PER_SESSION,
                    rate_hz=float(TICKS_PER_SESSION),
                    window_seconds=2.0,
                ),
                _to_point,
            )
            for i in range(N_SESSIONS)
        ]
        peak_depth = 0
        for _ in range(TICKS_PER_SESSION):
            for session in sessions:
                session.push(rng.normal(size=SENSORS_PER_SESSION))
            peak_depth = max(peak_depth, service.queue_depth)
        service.flush()
        drained_s = time.perf_counter() - started
        submitted = sum(s.submitted for s in sessions)
        for session in sessions:
            session.close()
    cube_total = engine.evaluate_exact(
        RangeSumQuery.count(
            [(0, CUBE_SHAPE[0] - 1), (0, CUBE_SHAPE[1] - 1)]
        )
    ) - float(np.sum(make_cube()))
    engine.store.close()
    return {
        "sessions": N_SESSIONS,
        "submitted": submitted,
        "committed": service.committed_points,
        "commits": service.commits,
        "peak_queue_depth": peak_depth,
        "final_queue_depth": service.queue_depth,
        "elapsed_s": round(drained_s, 4),
        "cube_delta_matches": bool(abs(cube_total - submitted) < 1e-6),
        "zero_loss": (
            service.committed_points == submitted
            and not service.failed_batches
        ),
    }


def run_overload_and_faults() -> dict:
    """Claim 4: degrade under pressure, recover on drain, survive faults."""
    engine = build_engine(
        0.002,
        fault_plan=FaultPlan(seed=31, write_error_rate=0.05),
        retry_policy=RetryPolicy(
            max_attempts=8, base_delay_s=0.0001, max_delay_s=0.001,
            budget_s=1.0,
        ),
    )
    coordinator = BandwidthCoordinator(
        high_watermark=0.5, low_watermark=0.2,
        sustain_ticks=2, degrade_factor=0.5, min_scale=0.25,
    )
    service = IngestService(
        engine, queue_capacity=128, commit_batch=16,
        coordinator=coordinator, poll_seconds=0.005,
    )
    rng = np.random.default_rng(41)
    with use_registry(MetricsRegistry()) as reg:
        with service:
            sessions = [
                service.open_session(
                    f"o{i}",
                    StreamingAdaptiveSampler(
                        width=SENSORS_PER_SESSION, rate_hz=64.0
                    ),
                    _to_point,
                )
                for i in range(8)
            ]
            for _ in range(120):
                for session in sessions:
                    session.push(rng.normal(size=SENSORS_PER_SESSION))
            was_degraded = coordinator.degraded
            min_scale_seen = coordinator.scale
            service.flush()
            deadline = time.monotonic() + 10.0
            while coordinator.degraded and time.monotonic() < deadline:
                time.sleep(0.01)
            submitted = sum(s.submitted for s in sessions)
            for session in sessions:
                session.close()
        degraded_seconds = reg.counter(
            "ingest.degraded_rate_seconds"
        ).value
        degradations = reg.counter("ingest.degradations").value
    engine.store.close()
    return {
        "fault_write_error_rate": 0.05,
        "submitted": submitted,
        "committed": service.committed_points,
        "degradations": int(degradations),
        "min_rate_scale": min_scale_seen,
        "degraded_rate_seconds": round(float(degraded_seconds), 4),
        "was_degraded_under_pressure": bool(
            was_degraded or degradations > 0
        ),
        "recovered_on_drain": not coordinator.degraded,
        "zero_loss": (
            service.committed_points == submitted
            and not service.failed_batches
        ),
    }


def run_benchmark() -> dict:
    append = run_batch_append()
    sessions = run_many_sessions()
    overload = run_overload_and_faults()
    payload = {
        "schema": "repro.bench/ingest-v1",
        "batch_size": BATCH_SIZE,
        "append_latency_s": APPEND_LATENCY_S,
        "batch_append": append,
        "many_sessions": sessions,
        "overload_and_faults": overload,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_p6_ingest(emit, benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    append = payload["batch_append"]
    sessions = payload["many_sessions"]
    overload = payload["overload_and_faults"]
    rows = [
        ["batch append", f"{append['sequential_s'] * 1e3:.0f}",
         f"{append['batched_s'] * 1e3:.0f}", f"{append['speedup']}x"],
    ]
    emit(
        "P6_ingest",
        format_table(
            ["path", "sequential ms", "batched ms", "speedup"], rows
        )
        + f"\nbitwise identical: {append['bitwise_identical']}"
        + f"\n{sessions['sessions']} sessions: "
        f"{sessions['committed']}/{sessions['submitted']} committed in "
        f"{sessions['elapsed_s']}s "
        f"(peak queue {sessions['peak_queue_depth']})"
        + f"\noverload: {overload['degradations']} degradations, "
        f"{overload['degraded_rate_seconds']}s degraded, "
        f"recovered={overload['recovered_on_drain']}, "
        f"zero_loss={overload['zero_loss']} at "
        f"{overload['fault_write_error_rate']:.0%} write faults"
        + f"\nJSON baseline written to {JSON_PATH.name}",
    )
    # The headline claims of PR 7:
    assert append["all_identical"], "batch append must be bitwise exact"
    assert append["speedup"] >= 5.0
    assert sessions["sessions"] >= 100
    assert sessions["zero_loss"]
    assert sessions["cube_delta_matches"]
    assert sessions["final_queue_depth"] == 0
    assert overload["was_degraded_under_pressure"]
    assert overload["degraded_rate_seconds"] > 0
    assert overload["recovered_on_drain"]
    assert overload["zero_loss"]


if __name__ == "__main__":
    # Import-safe direct invocation (no work at module import time).
    print(json.dumps(run_benchmark(), indent=2))
