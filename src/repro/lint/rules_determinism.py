"""Determinism rules: every random draw in the library is seeded.

The benchmark suite's claims (EXPERIMENTS.md) are reproducible only
because every stochastic component draws from an explicitly seeded
generator — ``np.random.default_rng(seed)`` or ``random.Random(seed)``.
``determinism-seeded-rng`` bans the global-state alternatives inside
``src/repro``: module-level ``np.random.*`` convenience functions,
module-level ``random.*`` draws (whether called as ``random.shuffle``
or imported bare via ``from random import shuffle``), unseeded
``default_rng()`` / ``Random()``, ``SystemRandom`` (unseedable by
design), and wall-clock seeds — ``Random(time.time())`` is just the
hidden global RNG with extra steps: two runs never share a seed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import BaseRule, FileContext, Finding, register

__all__ = ["SeededRngRule"]

#: ``np.random`` members that are fine: seeded-generator entry points.
NP_RANDOM_ALLOWED = frozenset(
    {"Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox",
     "default_rng"}
)

#: ``random``-module draw functions that mutate the hidden global RNG.
RANDOM_MODULE_DRAWS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }
)


#: ``time``-module readings that make a run-unique (irreproducible) seed.
WALL_CLOCK_FNS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns"}
)


def _imported_names(tree: ast.AST) -> dict[str, str]:
    """Map of local alias -> imported module for plain ``import`` forms."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = alias.name
    return out


def _from_imported(tree: ast.AST) -> dict[str, tuple[str, str]]:
    """Map of local alias -> (module, name) for ``from m import n``."""
    out: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                out[alias.asname or alias.name] = (node.module, alias.name)
    return out


@register
class SeededRngRule(BaseRule):
    rule_id = "determinism-seeded-rng"
    severity = "error"
    description = (
        "library code draws randomness from seeded generators only "
        "(np.random.default_rng(seed) / random.Random(seed))"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield every violation of this rule in one file."""
        if not ctx.in_package("repro"):
            return
        imports = _imported_names(ctx.tree)
        from_imports = _from_imported(ctx.tree)
        numpy_aliases = {
            alias for alias, mod in imports.items() if mod == "numpy"
        }
        random_aliases = {
            alias for alias, mod in imports.items() if mod == "random"
        }
        time_aliases = {
            alias for alias, mod in imports.items() if mod == "time"
        }
        # Bare names that are really random-module draws / constructors
        # or time readings (``from random import shuffle``).
        bare_draws = {
            alias for alias, (mod, name) in from_imports.items()
            if mod == "random" and name in RANDOM_MODULE_DRAWS
        }
        bare_ctors = {
            alias: name for alias, (mod, name) in from_imports.items()
            if (mod == "random" and name in ("Random", "SystemRandom"))
            or (mod == "numpy.random" and name == "default_rng")
        }
        bare_clocks = {
            alias for alias, (mod, name) in from_imports.items()
            if mod == "time" and name in WALL_CLOCK_FNS
        }

        def is_wall_clock(expr: ast.expr) -> bool:
            # int(time.time()) seeds are as irreproducible as the raw
            # float; unwrap the cast.
            if (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Name)
                    and expr.func.id == "int" and len(expr.args) == 1):
                return is_wall_clock(expr.args[0])
            if not isinstance(expr, ast.Call):
                return False
            fn = expr.func
            if (isinstance(fn, ast.Attribute)
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id in time_aliases
                    and fn.attr in WALL_CLOCK_FNS):
                return True
            return isinstance(fn, ast.Name) and fn.id in bare_clocks

        def seed_args(node: ast.Call) -> list[ast.expr]:
            args = list(node.args[:1])
            args.extend(
                kw.value for kw in node.keywords if kw.arg == "seed"
            )
            return args

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in bare_draws:
                    _, origin = from_imports[func.id]
                    yield self.finding(
                        ctx,
                        node,
                        f"{func.id}() is random.{origin} imported "
                        f"bare; it draws from the hidden global RNG — "
                        f"use a seeded random.Random(seed) instead",
                    )
                elif func.id in bare_ctors:
                    origin = bare_ctors[func.id]
                    if origin == "SystemRandom":
                        yield self.finding(
                            ctx,
                            node,
                            "random.SystemRandom is unseedable; "
                            "benchmarks cannot replay its draws",
                        )
                    elif not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node,
                            f"{origin}() without a seed; pass an "
                            f"explicit seed for reproducible runs",
                        )
                    elif any(is_wall_clock(a) for a in seed_args(node)):
                        yield self.finding(
                            ctx,
                            node,
                            f"{origin}() seeded from the wall clock; "
                            f"two runs never share a seed — use a "
                            f"fixed or configured seed",
                        )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            # <anything>.seed(time.time()) re-seeds a generator from
            # the clock, defeating replay no matter how it was built.
            if func.attr == "seed" and any(
                is_wall_clock(a) for a in seed_args(node)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "seed(...) from the wall clock; two runs never "
                    "share a seed — use a fixed or configured seed",
                )
                continue
            value = func.value
            # np.random.<fn>(...)
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in numpy_aliases
            ):
                if func.attr == "default_rng":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node,
                            "np.random.default_rng() without a seed; "
                            "pass an explicit seed for reproducible runs",
                        )
                    elif any(is_wall_clock(a) for a in seed_args(node)):
                        yield self.finding(
                            ctx,
                            node,
                            "np.random.default_rng() seeded from the "
                            "wall clock; two runs never share a seed — "
                            "use a fixed or configured seed",
                        )
                elif func.attr not in NP_RANDOM_ALLOWED:
                    yield self.finding(
                        ctx,
                        node,
                        f"np.random.{func.attr}() uses numpy's hidden "
                        f"global RNG; draw from a seeded "
                        f"np.random.default_rng(seed) instead",
                    )
            # random.<fn>(...)
            elif (
                isinstance(value, ast.Name) and value.id in random_aliases
            ):
                if func.attr in RANDOM_MODULE_DRAWS:
                    yield self.finding(
                        ctx,
                        node,
                        f"random.{func.attr}() uses the hidden global "
                        f"RNG; draw from a seeded random.Random(seed) "
                        f"instead",
                    )
                elif func.attr == "Random":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node,
                            "random.Random() without a seed; pass an "
                            "explicit seed for reproducible runs",
                        )
                    elif any(is_wall_clock(a) for a in seed_args(node)):
                        yield self.finding(
                            ctx,
                            node,
                            "random.Random() seeded from the wall "
                            "clock; two runs never share a seed — use "
                            "a fixed or configured seed",
                        )
                elif func.attr == "SystemRandom":
                    yield self.finding(
                        ctx,
                        node,
                        "random.SystemRandom is unseedable; benchmarks "
                        "cannot replay its draws",
                    )
