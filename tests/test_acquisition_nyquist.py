"""Tests for Nyquist rate estimation (repro.acquisition.nyquist)."""

import numpy as np
import pytest

from repro.core.errors import AcquisitionError
from repro.acquisition.nyquist import (
    estimate_fmax_autocorr,
    estimate_fmax_dft,
    estimate_fmax_mse,
    nyquist_rate,
    required_rates,
)
from repro.sensors.glove import band_limited_signal


RATE = 100.0


def tone(freq: float, duration: float = 10.0, rate: float = RATE) -> np.ndarray:
    t = np.arange(int(duration * rate)) / rate
    return np.sin(2 * np.pi * freq * t)


class TestDftEstimator:
    @pytest.mark.parametrize("freq", [1.0, 5.0, 12.0])
    def test_pure_tone(self, freq):
        est = estimate_fmax_dft(tone(freq), RATE)
        assert est == pytest.approx(freq, abs=0.2)

    def test_two_tones_reports_higher(self):
        signal = tone(3.0) + 0.5 * tone(9.0)
        est = estimate_fmax_dft(signal, RATE)
        assert est == pytest.approx(9.0, abs=0.3)

    def test_band_limited_signal(self):
        rng = np.random.default_rng(0)
        signal = band_limited_signal(20.0, RATE, 6.0, rng)
        est = estimate_fmax_dft(signal, RATE)
        assert 2.0 <= est <= 6.5

    def test_dc_signal(self):
        assert estimate_fmax_dft(np.full(100, 3.0), RATE) == 0.0

    def test_threshold_monotone(self):
        signal = tone(3.0) + 0.1 * tone(12.0)
        lo = estimate_fmax_dft(signal, RATE, energy_threshold=0.9)
        hi = estimate_fmax_dft(signal, RATE, energy_threshold=0.999)
        assert lo <= hi

    def test_validation(self):
        with pytest.raises(AcquisitionError):
            estimate_fmax_dft(np.ones(4), RATE)
        with pytest.raises(AcquisitionError):
            estimate_fmax_dft(tone(1.0), -1.0)
        with pytest.raises(AcquisitionError):
            estimate_fmax_dft(tone(1.0), RATE, energy_threshold=0.0)


class TestAutocorrEstimator:
    @pytest.mark.parametrize("freq", [2.0, 5.0, 10.0])
    def test_pure_tone(self, freq):
        est = estimate_fmax_autocorr(tone(freq), RATE)
        assert est == pytest.approx(freq, rel=0.35)

    def test_dc_signal(self):
        assert estimate_fmax_autocorr(np.full(100, 5.0), RATE) == 0.0

    def test_underestimates_wideband(self):
        """Autocorrelation tracks the dominant component, so it reads low
        on wideband signals — the deficiency E10 quantifies."""
        signal = tone(2.0) + 0.3 * tone(11.0)
        est = estimate_fmax_autocorr(signal, RATE)
        assert est < 8.0


class TestMseEstimator:
    def test_slow_tone_allows_decimation(self):
        est = estimate_fmax_mse(tone(1.0), RATE, tolerance=0.05)
        assert est <= 15.0

    def test_fast_tone_needs_rate(self):
        slow = estimate_fmax_mse(tone(1.0), RATE, tolerance=0.02)
        fast = estimate_fmax_mse(tone(20.0), RATE, tolerance=0.02)
        assert fast > slow

    def test_constant_signal(self):
        assert estimate_fmax_mse(np.full(200, 2.0), RATE) == 0.0

    def test_tolerance_validated(self):
        with pytest.raises(AcquisitionError):
            estimate_fmax_mse(tone(1.0), RATE, tolerance=1.5)


class TestNyquistRate:
    def test_doubling(self):
        assert nyquist_rate(5.0) == 10.0

    def test_negative_rejected(self):
        with pytest.raises(AcquisitionError):
            nyquist_rate(-1.0)


class TestRequiredRates:
    def test_per_sensor_rates(self):
        session = np.column_stack([tone(1.0), tone(10.0)])
        rates = required_rates(session, RATE, method="dft")
        assert rates[1] > rates[0]
        assert rates[0] == pytest.approx(2.0, abs=1.0)

    def test_clipped_to_device_rate(self):
        session = np.column_stack([tone(45.0)])
        rates = required_rates(session, RATE, method="dft")
        assert rates[0] <= RATE

    def test_floor_applied(self):
        session = np.column_stack([np.full(500, 1.0)])
        rates = required_rates(session, RATE, method="dft", min_rate_hz=2.0)
        assert rates[0] == 2.0

    def test_all_methods_run(self):
        session = np.column_stack([tone(2.0), tone(8.0)])
        for method in ("dft", "autocorr", "mse"):
            rates = required_rates(session, RATE, method=method)
            assert rates.shape == (2,)
            assert np.all(rates > 0)

    def test_unknown_method(self):
        with pytest.raises(AcquisitionError):
            required_rates(np.zeros((100, 2)), RATE, method="psychic")

    def test_1d_rejected(self):
        with pytest.raises(AcquisitionError):
            required_rates(tone(1.0), RATE)
