"""Periodized orthonormal discrete wavelet transform.

This is the transform AIMS applies to acquired immersidata before storage
(§3.1.1 of the paper) and the basis in which ProPolyne evaluates polynomial
range-sums (§3.3).  Both uses require the transform to be an *orthogonal*
change of basis, so we implement the periodized decimated cascade whose
analysis matrix has orthonormal rows:

    approx[k] = sum_m h[m] * x[(2k + m) mod n]
    detail[k] = sum_m g[m] * x[(2k + m) mod n]

The flat coefficient layout packs a full decomposition of a length-``2^J``
signal into one vector of the same length::

    [ a_J | d_J | d_{J-1} ... | d_1 ]
      1     1     2        ...  2^(J-1) coefficients

i.e. ``flat[0]`` is the single coarsest scaling coefficient and
``flat[2^j : 2^(j+1)]`` holds the detail coefficients produced after
``J - j`` cascade steps.  This is the classical "error tree" ordering used
by the storage subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import TransformError
from repro.wavelets.filters import WaveletFilter, get_filter

__all__ = [
    "dwt_level",
    "idwt_level",
    "wavedec",
    "waverec",
    "WaveletCoefficients",
    "max_levels",
    "is_power_of_two",
]


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def max_levels(n: int, filt: WaveletFilter) -> int:
    """Deepest cascade depth for a length-``n`` signal under ``filt``.

    The cascade halves the signal at every level and stops once the current
    length would drop below the filter support (periodization with fewer
    samples than taps wraps the filter onto itself and loses
    orthonormality).
    """
    levels = 0
    while n % 2 == 0 and n >= filt.length and n > 1:
        n //= 2
        levels += 1
    return levels


def dwt_level(x: np.ndarray, filt: WaveletFilter) -> tuple[np.ndarray, np.ndarray]:
    """One periodized analysis step: ``x -> (approx, detail)``.

    Args:
        x: Signal of even length ``n >= filt.length``.
        filt: Orthonormal filter bank.

    Returns:
        ``(approx, detail)``, each of length ``n // 2``.
    """
    x = np.asarray(x, dtype=float)
    n = x.size
    if n % 2:
        raise TransformError(f"dwt_level needs even length, got {n}")
    if n < filt.length:
        raise TransformError(
            f"dwt_level needs length >= {filt.length} taps, got {n}"
        )
    half = n // 2
    # Gather the periodized windows: window[k, m] = x[(2k + m) mod n].
    idx = (2 * np.arange(half)[:, None] + np.arange(filt.length)[None, :]) % n
    windows = x[idx]
    approx = windows @ filt.lowpass
    detail = windows @ filt.highpass
    return approx, detail


def idwt_level(
    approx: np.ndarray, detail: np.ndarray, filt: WaveletFilter
) -> np.ndarray:
    """One periodized synthesis step, the exact inverse of :func:`dwt_level`."""
    approx = np.asarray(approx, dtype=float)
    detail = np.asarray(detail, dtype=float)
    if approx.shape != detail.shape:
        raise TransformError(
            f"approx/detail length mismatch: {approx.size} vs {detail.size}"
        )
    half = approx.size
    n = 2 * half
    x = np.zeros(n)
    # Transpose of the orthonormal analysis matrix: scatter-add each
    # coefficient back through its filter taps.
    idx = (2 * np.arange(half)[:, None] + np.arange(filt.length)[None, :]) % n
    np.add.at(x, idx, approx[:, None] * filt.lowpass[None, :])
    np.add.at(x, idx, detail[:, None] * filt.highpass[None, :])
    return x


@dataclass
class WaveletCoefficients:
    """A full multilevel decomposition.

    Attributes:
        approx: Coarsest approximation coefficients (length ``n / 2**levels``).
        details: Detail bands ordered coarsest-first, so ``details[0]`` was
            produced at the deepest cascade level.
        filter_name: Name of the filter bank used.
        length: Original signal length.
    """

    approx: np.ndarray
    details: list[np.ndarray]
    filter_name: str
    length: int

    @property
    def levels(self) -> int:
        """Number of cascade levels in this decomposition."""
        return len(self.details)

    def to_flat(self) -> np.ndarray:
        """Pack into the error-tree flat layout ``[a | d_coarse .. d_fine]``."""
        return np.concatenate([self.approx, *self.details])

    @classmethod
    def from_flat(
        cls, flat: np.ndarray, levels: int, filter_name: str
    ) -> "WaveletCoefficients":
        """Rebuild the banded structure from a flat layout vector."""
        flat = np.asarray(flat, dtype=float)
        n = flat.size
        approx_len = n >> levels
        if approx_len << levels != n:
            raise TransformError(
                f"flat length {n} does not admit {levels} levels"
            )
        approx = flat[:approx_len].copy()
        details = []
        offset = approx_len
        width = approx_len
        for _ in range(levels):
            details.append(flat[offset : offset + width].copy())
            offset += width
            width *= 2
        return cls(approx=approx, details=details, filter_name=filter_name, length=n)

    def energy(self) -> float:
        """Squared L2 norm — equals the signal's by orthonormality."""
        total = float(np.dot(self.approx, self.approx))
        for band in self.details:
            total += float(np.dot(band, band))
        return total


def wavedec(
    x: np.ndarray, wavelet: str | WaveletFilter = "haar", levels: int | None = None
) -> WaveletCoefficients:
    """Full multilevel periodized decomposition.

    Args:
        x: Input signal; length must be divisible by ``2**levels``.
        wavelet: Filter name or :class:`WaveletFilter`.
        levels: Cascade depth; defaults to the maximum supported depth.

    Returns:
        A :class:`WaveletCoefficients` bundle.
    """
    filt = wavelet if isinstance(wavelet, WaveletFilter) else get_filter(wavelet)
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise TransformError(f"wavedec expects a 1-D signal, got ndim={x.ndim}")
    depth = max_levels(x.size, filt) if levels is None else levels
    if depth < 0 or depth > max_levels(x.size, filt):
        raise TransformError(
            f"cannot run {depth} levels on length {x.size} with "
            f"{filt.length}-tap filter (max {max_levels(x.size, filt)})"
        )
    details: list[np.ndarray] = []
    current = x
    for _ in range(depth):
        current, band = dwt_level(current, filt)
        details.append(band)
    details.reverse()  # coarsest-first
    return WaveletCoefficients(
        approx=current, details=details, filter_name=filt.name, length=x.size
    )


def waverec(coeffs: WaveletCoefficients) -> np.ndarray:
    """Exact inverse of :func:`wavedec`."""
    filt = get_filter(coeffs.filter_name)
    current = coeffs.approx
    for band in coeffs.details:
        current = idwt_level(current, band, filt)
    return current
