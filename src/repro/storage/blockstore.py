"""Wavelet block stores: the bridge between allocation and queries.

A block store owns a block *device stack*, an allocation, and serves
the one request the query engine makes: "give me these coefficients,
and tell me what it cost".  Two variants:

* :class:`WaveletBlockStore` — 1-D flat-layout coefficient vectors;
* :class:`TensorBlockStore` — multivariate coefficient cubes on
  Cartesian-product blocks.

Storage configuration is declarative: both stores take a
:class:`~repro.storage.device.StorageSpec` (shards, cache, CRC
framing, fault injection, retry/breaker resilience, simulated latency)
and build the canonical validated middleware stack from it — caching,
corruption detection, retries and fault injection are all the *device's*
layers now, not special cases inside the store.  The legacy keyword
arguments (``pool_capacity``/``fault_plan``/``retry_policy``/
``breaker``) are folded into an equivalent spec, so with none of them
configured construction and reads are exactly the pre-resilience code
path (regression-tested to be bitwise-identical).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import StorageError
from repro.obs import DEFAULT_COUNT_BUCKETS
from repro.obs import histogram as obs_histogram
from repro.obs import span
from repro.storage.allocation import Allocation, TensorAllocation
from repro.storage.device import StorageSpec
from repro.storage.disk import IOStats

__all__ = ["WaveletBlockStore", "TensorBlockStore"]


def _compose_spec(
    storage, pool_capacity, fault_plan, retry_policy, breaker
) -> StorageSpec:
    """One spec from either the declarative argument or legacy kwargs."""
    if storage is not None:
        if (pool_capacity is not None or fault_plan is not None
                or retry_policy is not None or breaker is not None):
            raise StorageError(
                "pass either a StorageSpec or legacy storage kwargs, "
                "not both"
            )
        return storage
    return StorageSpec(
        cache_blocks=pool_capacity,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        breaker=breaker,
    )


class _StoreBase:
    """Device-stack plumbing shared by both block stores."""

    def _init_storage(self, spec: StorageSpec, block_size: int) -> None:
        self.spec = spec
        self._built = spec.build(block_size)
        self.device = self._built.device
        #: The breaker template from the spec (unsharded stacks use it
        #: directly); per-shard breakers live in :attr:`breakers`.
        self.breaker = spec.breaker
        self.breakers = self._built.breakers

    def _populate(self, blocks: dict) -> None:
        # Initial population models in-memory construction, not live
        # traffic: injection starts only once the store is serving.
        self._built.set_injecting(False)
        try:
            for block_id, items in blocks.items():
                self.device.write_block(block_id, items)
        finally:
            self._built.set_injecting(True)

    @property
    def disk(self):
        """Deprecated alias for :attr:`device` (pre-stack call sites)."""
        return self.device

    @property
    def caches(self) -> list:
        """Caching layers across all shards, in shard order (empty when
        the spec disables caching) — benchmarks clear these between runs
        and difference their :class:`~repro.storage.device.PoolStats`."""
        layers = (stack.layer("caching") for stack in self._built.stacks)
        return [layer for layer in layers if layer is not None]

    def shard_of(self, block_id) -> int:
        """Shard index a block id is placed on (0 when unsharded) —
        the key the scan coordinator's single-flight map uses."""
        return self._built.shard_of(block_id)

    def set_injecting(self, flag: bool) -> None:
        """Toggle fault injection on every shard's faulty layer (chaos
        drills heal storage this way; no-op without a fault plan)."""
        self._built.set_injecting(flag)

    def storage_stats(self) -> dict:
        """Nested per-layer statistics of the whole device stack."""
        return self.device.stats()

    def io_snapshot(self) -> IOStats:
        """Current leaf I/O counters (copy, summed across shards) for
        before/after differencing."""
        return self.device.io_totals()

    def io_since(self, before: IOStats) -> IOStats:
        """Leaf I/O performed since ``before`` was snapshotted."""
        return self.device.io_totals().delta(before)

    def fetch_blocks(self, block_ids: list) -> dict:
        """Bulk block fetch: one coalesced device read for many blocks.

        The batch evaluator's I/O entry point — the whole batch's block
        set goes down as a single ``read_many``, which the sharded
        device splits into one read per shard group
        (:func:`~repro.storage.scheduler.coalesce_by_shard`) on its
        persistent fan-out pool.

        Args:
            block_ids: Blocks to read (deduplicated by the caller).

        Returns:
            Mapping from block id to block payload.
        """
        with span("storage.fetch_blocks"):
            ids = list(block_ids)
            obs_histogram(
                "storage.blocks_per_batch", DEFAULT_COUNT_BUCKETS
            ).observe(len(ids))
            if not ids:
                return {}
            return self.device.read_many(ids)

    def store_blocks(self, payloads: dict) -> None:
        """Group-commit block write: one coalesced device write for many
        blocks.

        The batch inserter's I/O exit point and the write-side twin of
        :meth:`fetch_blocks` — a whole batch's dirty blocks go down as a
        single ``write_many``, which the sharded device splits into one
        write per shard group on its persistent fan-out pool, with cache
        invalidation and CRC framing applied per member by the
        middleware stack.

        Args:
            payloads: Mapping from block id to the full replacement
                payload dictionary for that block.
        """
        with span("storage.store_blocks"):
            obs_histogram(
                "storage.blocks_per_write_batch", DEFAULT_COUNT_BUCKETS
            ).observe(len(payloads))
            if not payloads:
                return
            self.device.write_many(payloads)

    def close(self) -> None:
        """Release storage resources (fan-out pools); idempotent."""
        self._built.close()


class WaveletBlockStore(_StoreBase):
    """1-D wavelet coefficients on a device stack, under an allocation."""

    def __init__(
        self,
        flat: np.ndarray,
        allocation: Allocation,
        pool_capacity: int | None = None,
        fault_plan=None,
        retry_policy=None,
        breaker=None,
        storage: StorageSpec | None = None,
    ) -> None:
        values = np.asarray(flat, dtype=float)
        if values.size != allocation.n:
            raise StorageError(
                f"coefficient count {values.size} != allocation size "
                f"{allocation.n}"
            )
        self.allocation = allocation
        spec = _compose_spec(
            storage, pool_capacity, fault_plan, retry_policy, breaker
        )
        self._init_storage(spec, allocation.block_size)
        self._populate(allocation.build_blocks(values))
        self._norm = float(np.linalg.norm(values))

    @property
    def n(self) -> int:
        """Number of stored coefficients."""
        return self.allocation.n

    @property
    def data_norm(self) -> float:
        """L2 norm of the stored vector — recorded at population time and
        used by the progressive evaluator's Cauchy–Schwarz error bound."""
        return self._norm

    def fetch(self, indices: list[int] | set[int]) -> dict[int, float]:
        """Fetch the requested coefficients, reading whole blocks.

        Multi-block reads go through the device's bulk path, so a
        sharded stack fans them out across shards concurrently.
        """
        with span("storage.fetch"):
            needed = sorted(self.allocation.blocks_for(indices))
            obs_histogram(
                "query.blocks_per_query", DEFAULT_COUNT_BUCKETS
            ).observe(len(needed))
            blocks = self.device.read_many(needed)
            out: dict[int, float] = {}
            for block_id in needed:
                out.update(blocks[block_id])
            missing = [i for i in indices if i not in out]
            if missing:
                raise StorageError(
                    f"coefficients missing from blocks: {missing[:5]}"
                )
            return {int(i): out[int(i)] for i in indices}

    def fetch_block(self, block_id: int) -> dict[int, float]:
        """Fetch one whole block (progressive evaluation reads block-wise)."""
        return self.device.read_block(block_id)

    def update(self, index: int, value: float) -> None:
        """Overwrite one coefficient (read-modify-write of its block).

        Cache coherence is automatic: the write enters through the
        stack, so the caching layer invalidates its copy itself.
        """
        if not 0 <= index < self.n:
            raise StorageError(f"coefficient index {index} out of range")
        block_id = int(self.allocation.block_of[index])
        block = self.device.read_block(block_id)
        old = block[index]
        block[index] = float(value)
        self.device.write_block(block_id, block)
        self._norm = float(
            np.sqrt(max(0.0, self._norm**2 - old**2 + float(value) ** 2))
        )


class TensorBlockStore(_StoreBase):
    """Multivariate coefficient cube on Cartesian-product blocks."""

    def __init__(
        self,
        coeffs: np.ndarray,
        allocation: TensorAllocation,
        pool_capacity: int | None = None,
        fault_plan=None,
        retry_policy=None,
        breaker=None,
        storage: StorageSpec | None = None,
    ) -> None:
        cube = np.asarray(coeffs, dtype=float)
        if cube.shape != allocation.shape:
            raise StorageError(
                f"cube shape {cube.shape} != allocation shape "
                f"{allocation.shape}"
            )
        self.allocation = allocation
        spec = _compose_spec(
            storage, pool_capacity, fault_plan, retry_policy, breaker
        )
        self._init_storage(spec, allocation.block_capacity)
        self._populate(allocation.build_blocks(cube))
        self._norm = float(np.linalg.norm(cube.ravel()))

    @property
    def shape(self) -> tuple[int, ...]:
        """Stored coefficient cube shape."""
        return self.allocation.shape

    @property
    def data_norm(self) -> float:
        """L2 norm of the stored cube (for progressive error bounds)."""
        return self._norm

    def fetch(
        self, indices: list[tuple[int, ...]]
    ) -> dict[tuple[int, ...], float]:
        """Fetch the requested multivariate coefficients block-wise,
        fanning out across shards through the device's bulk path."""
        with span("storage.fetch"):
            needed = sorted({self.allocation.block_of(i) for i in indices})
            obs_histogram(
                "query.blocks_per_query", DEFAULT_COUNT_BUCKETS
            ).observe(len(needed))
            blocks = self.device.read_many(needed)
            cache: dict[tuple[int, ...], float] = {}
            for block_id in needed:
                cache.update(blocks[block_id])
            try:
                return {tuple(i): cache[tuple(i)] for i in indices}
            except KeyError as exc:
                raise StorageError(
                    f"coefficient {exc} missing from blocks"
                ) from exc

    def blocks_for(
        self, indices: list[tuple[int, ...]]
    ) -> set[tuple[int, ...]]:
        """Blocks a set of coefficients lives on (planning, no I/O)."""
        return {self.allocation.block_of(i) for i in indices}

    def fetch_block(
        self, block_id: tuple[int, ...]
    ) -> dict[tuple[int, ...], float]:
        """Fetch one whole product block."""
        return self.device.read_block(block_id)

    def update_block(
        self, block_id: tuple[int, ...], items: dict[tuple[int, ...], float]
    ) -> None:
        """Overwrite one block (append path).

        Cache coherence is automatic: the write enters through the
        stack, so the caching layer invalidates its copy itself.
        """
        self.device.write_block(block_id, items)
