"""Tests for ProPolyne's incremental append path (§3.1.1 reason 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import QueryError
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery, evaluate_on_cube


RNG = np.random.default_rng(131)


class TestInsert:
    def _fresh(self, shape=(32, 32), pool=None):
        cube = np.abs(RNG.normal(size=shape))
        return cube, ProPolyneEngine(
            cube, max_degree=1, block_size=7, pool_capacity=pool
        )

    def test_insert_matches_rebuild(self):
        cube, engine = self._fresh()
        engine.insert((5, 20))
        engine.insert((5, 20))
        engine.insert((31, 0), weight=3.0)
        cube2 = cube.copy()
        cube2[5, 20] += 2.0
        cube2[31, 0] += 3.0
        rebuilt = ProPolyneEngine(cube2, max_degree=1, block_size=7)
        for query in (
            RangeSumQuery.count([(0, 31), (0, 31)]),
            RangeSumQuery.count([(5, 5), (20, 20)]),
            RangeSumQuery.weighted([(0, 31), (0, 31)], {0: 1}),
        ):
            assert engine.evaluate_exact(query) == pytest.approx(
                rebuilt.evaluate_exact(query)
            )

    def test_insert_updates_count(self):
        __, engine = self._fresh()
        total = RangeSumQuery.count([(0, 31), (0, 31)])
        before = engine.evaluate_exact(total)
        engine.insert((10, 10))
        assert engine.evaluate_exact(total) == pytest.approx(before + 1.0)

    def test_negative_weight_deletes(self):
        cube, engine = self._fresh()
        point_query = RangeSumQuery.count([(3, 3), (7, 7)])
        before = engine.evaluate_exact(point_query)
        engine.insert((3, 7), weight=-0.5)
        assert engine.evaluate_exact(point_query) == pytest.approx(before - 0.5)

    def test_touched_coefficients_polylog(self):
        """The §3.1.1 cost claim: appends touch O(polylog) coefficients."""
        counts = []
        for log_n in (6, 8, 10):
            n = 2**log_n
            engine = ProPolyneEngine(
                np.zeros(n), max_degree=1, block_size=7
            )
            counts.append(engine.insert((n // 3,)))
        assert counts[-1] < 2**10 / 8
        growth = np.diff(counts)
        assert all(g <= 30 for g in growth)

    def test_progressive_bounds_still_guaranteed_after_insert(self):
        cube, engine = self._fresh()
        for _ in range(5):
            engine.insert((int(RNG.integers(0, 32)), int(RNG.integers(0, 32))))
        query = RangeSumQuery.count([(4, 27), (9, 30)])
        exact = engine.evaluate_exact(query)
        for est in engine.evaluate_progressive(query):
            assert abs(est.estimate - exact) <= est.error_bound + 1e-6

    def test_insert_with_buffer_pool_stays_coherent(self):
        cube, engine = self._fresh(pool=16)
        total = RangeSumQuery.count([(0, 31), (0, 31)])
        engine.evaluate_exact(total)  # warm the pool
        before = engine.evaluate_exact(total)
        engine.insert((0, 0))
        assert engine.evaluate_exact(total) == pytest.approx(before + 1.0)

    def test_validation(self):
        __, engine = self._fresh()
        with pytest.raises(QueryError):
            engine.insert((1,))
        with pytest.raises(QueryError):
            engine.insert((32, 0))
        with pytest.raises(QueryError):
            engine.insert((-1, 0))

    def test_concurrent_writers_and_readers_stay_consistent(self):
        # Regression for the insert concurrency hazard: two concurrent
        # inserts used to race their per-block read-modify-writes (lost
        # updates).  Inserts now serialize on the engine update lock and
        # commit through the group-write path; readers run lock-free
        # throughout and must always see a finite, sane total.
        import threading

        engine = ProPolyneEngine(
            np.zeros((16, 16)), max_degree=1, block_size=7
        )
        n_writers, per_writer = 6, 30
        stop_reading = threading.Event()
        reader_errors: list[Exception] = []
        total_query = RangeSumQuery.count([(0, 15), (0, 15)])

        def write(k):
            for j in range(per_writer):
                engine.insert(((k * 5 + j) % 16, (j * 3) % 16))

        def read():
            while not stop_reading.is_set():
                try:
                    value = engine.evaluate_exact(total_query)
                    assert np.isfinite(value)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    reader_errors.append(exc)
                    return

        writers = [
            threading.Thread(target=write, args=(k,))
            for k in range(n_writers)
        ]
        readers = [threading.Thread(target=read) for _ in range(3)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop_reading.set()
        for t in readers:
            t.join()
        assert not reader_errors
        # No lost updates: the cube total equals every insert applied.
        assert engine.evaluate_exact(total_query) == pytest.approx(
            n_writers * per_writer
        )

    @settings(max_examples=20, deadline=None)
    @given(
        x=st.integers(0, 15),
        y=st.integers(0, 15),
        lo=st.integers(0, 15),
        hi=st.integers(0, 15),
    )
    def test_insert_property(self, x, y, lo, hi):
        cube = np.zeros((16, 16))
        engine = ProPolyneEngine(cube, max_degree=0, block_size=3)
        engine.insert((x, y))
        query = RangeSumQuery.count([(min(lo, hi), max(lo, hi)), (0, 15)])
        expected = 1.0 if min(lo, hi) <= x <= max(lo, hi) else 0.0
        assert engine.evaluate_exact(query) == pytest.approx(
            expected, abs=1e-9
        )
