"""Sensor hardware models: the device vocabulary of the AIMS paper.

Table 1 of the paper lists the 22 joint-angle sensors of the CyberGlove;
§2.2 adds the 6-channel Polhemus wrist tracker for a 28-sensor hand
capture, and §2.1 describes the ADHD rig: 6-D trackers (X, Y, Z position;
H, P, R rotation) on the head, hands and legs, streamed with timestamp and
sensor-id attributes for an 8-dimensional record schema.

Everything downstream (acquisition, storage, recognition) refers to sensors
through the :class:`SensorSpec` entries defined here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import SchemaError

__all__ = [
    "SensorSpec",
    "CYBERGLOVE_SENSORS",
    "POLHEMUS_CHANNELS",
    "HAND_RIG_SENSORS",
    "TRACKER_CHANNEL_NAMES",
    "BODY_TRACKER_SITES",
    "GLOVE_RATE_HZ",
    "sensor_by_id",
]

# The paper: "samples of these data at each sensor clock, which is about
# 0.01 second" -> 100 Hz.
GLOVE_RATE_HZ = 100.0


@dataclass(frozen=True)
class SensorSpec:
    """Static description of one physical sensor channel.

    Attributes:
        sensor_id: Stable integer id used in samples and records.
        name: Human-readable description (Table 1 wording for the glove).
        unit: Measurement unit.
        lo: Smallest physically meaningful reading.
        hi: Largest physically meaningful reading.
        max_frequency_hz: Highest frequency component the underlying body
            motion puts into this channel — the quantity the Nyquist-based
            acquisition subsystem estimates.  Distal finger joints move
            faster than the palm arch; the wrist and tracker channels sit
            in between.  These values parameterize the simulators.
    """

    sensor_id: int
    name: str
    unit: str
    lo: float
    hi: float
    max_frequency_hz: float

    def __post_init__(self) -> None:
        if self.lo >= self.hi:
            raise SchemaError(
                f"sensor {self.name!r}: lo {self.lo} must be < hi {self.hi}"
            )
        if self.max_frequency_hz <= 0:
            raise SchemaError(
                f"sensor {self.name!r}: max frequency must be positive"
            )


def _joint(sensor_id: int, name: str, f_max: float) -> SensorSpec:
    """Glove joint-angle channel: degrees in [0, 90] unless abduction."""
    span = (-30.0, 30.0) if "abduction" in name or "roll" in name else (0.0, 90.0)
    return SensorSpec(
        sensor_id=sensor_id,
        name=name,
        unit="deg",
        lo=span[0],
        hi=span[1],
        max_frequency_hz=f_max,
    )


# Table 1 of the paper, verbatim sensor order and descriptions.  The
# per-sensor max frequencies encode the heterogeneity §3.1 exploits:
# fingers articulate fast (5-8 Hz tremor/motion content), the palm arch
# and wrist move slowly (1-2 Hz).
CYBERGLOVE_SENSORS: tuple[SensorSpec, ...] = (
    _joint(1, "thumb roll sensor", 3.0),
    _joint(2, "thumb inner joint", 5.0),
    _joint(3, "thumb outer joint", 6.0),
    _joint(4, "thumb-index abduction", 4.0),
    _joint(5, "index inner joint", 6.0),
    _joint(6, "index middle joint", 7.0),
    _joint(7, "index outer joint", 8.0),
    _joint(8, "middle inner joint", 6.0),
    _joint(9, "middle middle joint", 7.0),
    _joint(10, "middle outer joint", 8.0),
    _joint(11, "index-middle abduction", 4.0),
    _joint(12, "ring inner joint", 6.0),
    _joint(13, "ring middle joint", 7.0),
    _joint(14, "ring outer joint", 8.0),
    _joint(15, "ring-middle abduction", 4.0),
    _joint(16, "pinky inner joint", 6.0),
    _joint(17, "pinky middle joint", 7.0),
    _joint(18, "pinky outer joint", 8.0),
    _joint(19, "pinky-ring abduction", 4.0),
    _joint(20, "palm arch", 1.5),
    _joint(21, "wrist flexion", 2.0),
    _joint(22, "wrist abduction", 2.0),
)

# Polhemus tracker: hand position relative to an initial setting plus palm
# plane rotation (§2.2).  Positions in centimetres, rotations in degrees.
POLHEMUS_CHANNELS: tuple[SensorSpec, ...] = (
    SensorSpec(23, "polhemus X position", "cm", -100.0, 100.0, 2.5),
    SensorSpec(24, "polhemus Y position", "cm", -100.0, 100.0, 2.5),
    SensorSpec(25, "polhemus Z position", "cm", -100.0, 100.0, 2.5),
    SensorSpec(26, "polhemus H rotation", "deg", -180.0, 180.0, 3.0),
    SensorSpec(27, "polhemus P rotation", "deg", -180.0, 180.0, 3.0),
    SensorSpec(28, "polhemus R rotation", "deg", -180.0, 180.0, 3.0),
)

# The full 28-sensor hand rig of §2.2: "collectively the data from the 28
# sensors capture the entirety of a hand motion."
HAND_RIG_SENSORS: tuple[SensorSpec, ...] = CYBERGLOVE_SENSORS + POLHEMUS_CHANNELS

# §2.1: each body tracker streams 6 dimensions.
TRACKER_CHANNEL_NAMES: tuple[str, ...] = ("X", "Y", "Z", "H", "P", "R")

# Tracker placement for the Virtual Classroom study.
BODY_TRACKER_SITES: tuple[str, ...] = (
    "head",
    "left_hand",
    "right_hand",
    "left_leg",
    "right_leg",
)

_BY_ID = {spec.sensor_id: spec for spec in HAND_RIG_SENSORS}


def sensor_by_id(sensor_id: int) -> SensorSpec:
    """Look up a hand-rig sensor by its Table 1 / Polhemus id."""
    try:
        return _BY_ID[sensor_id]
    except KeyError:
        raise SchemaError(f"unknown hand-rig sensor id {sensor_id}") from None
