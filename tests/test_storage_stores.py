"""Tests for disk, caching device, block stores, BLOB store and scheduler."""

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.storage.allocation import (
    TensorAllocation,
    sequential_allocation,
    subtree_tiling_allocation,
)
from repro.storage.blobstore import BlobStore
from repro.storage.blockstore import TensorBlockStore, WaveletBlockStore
from repro.storage.device import CachingDevice
from repro.storage.disk import SimulatedDisk
from repro.storage.scheduler import plan_blocks
from repro.wavelets.errortree import leaf_path


RNG = np.random.default_rng(41)


class TestSimulatedDisk:
    def test_write_read_roundtrip(self):
        disk = SimulatedDisk(block_size=4)
        disk.write_block(0, {1: 1.5, 2: -0.5})
        assert disk.read_block(0) == {1: 1.5, 2: -0.5}
        assert disk.io.reads == 1
        assert disk.io.writes == 1

    def test_reads_counted(self):
        disk = SimulatedDisk(block_size=4)
        disk.write_block("a", {0: 0.0})
        for _ in range(5):
            disk.read_block("a")
        assert disk.io.reads == 5

    def test_overfull_block_rejected(self):
        disk = SimulatedDisk(block_size=2)
        with pytest.raises(StorageError):
            disk.write_block(0, {i: 0.0 for i in range(3)})

    def test_missing_block(self):
        with pytest.raises(StorageError):
            SimulatedDisk(block_size=2).read_block(9)

    def test_stats_delta(self):
        disk = SimulatedDisk(block_size=4)
        disk.write_block(0, {0: 1.0})
        before = disk.io.snapshot()
        disk.read_block(0)
        disk.read_block(0)
        delta = disk.io.delta(before)
        assert delta.reads == 2 and delta.writes == 0

    def test_occupancy(self):
        disk = SimulatedDisk(block_size=4)
        assert disk.occupancy() == 0.0
        disk.write_block(0, {0: 1.0, 1: 2.0})
        assert disk.occupancy() == pytest.approx(0.5)

    def test_returns_copies(self):
        disk = SimulatedDisk(block_size=4)
        disk.write_block(0, {0: 1.0})
        block = disk.read_block(0)
        block[0] = 99.0
        assert disk.read_block(0)[0] == 1.0


class TestCachingDevice:
    def test_hits_avoid_device_reads(self):
        disk = SimulatedDisk(block_size=4)
        disk.write_block(0, {0: 1.0})
        pool = CachingDevice(disk, capacity=2)
        pool.read_block(0)
        pool.read_block(0)
        assert disk.io.reads == 1
        assert pool.pool_stats.hits == 1
        assert pool.pool_stats.misses == 1

    def test_lru_eviction(self):
        disk = SimulatedDisk(block_size=4)
        for b in range(3):
            disk.write_block(b, {b: float(b)})
        pool = CachingDevice(disk, capacity=2)
        pool.read_block(0)
        pool.read_block(1)
        pool.read_block(2)  # evicts 0
        pool.read_block(0)  # miss again
        assert pool.pool_stats.misses == 4

    def test_lru_recency_updates(self):
        disk = SimulatedDisk(block_size=4)
        for b in range(3):
            disk.write_block(b, {b: float(b)})
        pool = CachingDevice(disk, capacity=2)
        pool.read_block(0)
        pool.read_block(1)
        pool.read_block(0)  # 0 now most recent
        pool.read_block(2)  # evicts 1
        pool.read_block(0)  # hit
        assert pool.pool_stats.hits == 2

    def test_invalidate(self):
        disk = SimulatedDisk(block_size=4)
        disk.write_block(0, {0: 1.0})
        pool = CachingDevice(disk, capacity=2)
        pool.read_block(0)
        disk.write_block(0, {0: 2.0})
        pool.invalidate(0)
        assert pool.read_block(0)[0] == 2.0

    def test_hit_rate(self):
        disk = SimulatedDisk(block_size=4)
        disk.write_block(0, {0: 1.0})
        pool = CachingDevice(disk, capacity=1)
        assert pool.pool_stats.hit_rate == 0.0
        pool.read_block(0)
        pool.read_block(0)
        assert pool.pool_stats.hit_rate == 0.5

    def test_capacity_validated(self):
        with pytest.raises(StorageError):
            CachingDevice(SimulatedDisk(block_size=2), capacity=0)


class TestWaveletBlockStore:
    def _store(self, n=64, block=7, pool=None):
        flat = RNG.normal(size=n)
        alloc = subtree_tiling_allocation(n, block)
        return flat, WaveletBlockStore(flat, alloc, pool_capacity=pool)

    def test_fetch_returns_exact_values(self):
        flat, store = self._store()
        indices = [0, 5, 17, 63]
        got = store.fetch(indices)
        for i in indices:
            assert got[i] == pytest.approx(flat[i])

    def test_fetch_counts_block_reads(self):
        flat, store = self._store(n=2**10, block=7)
        before = store.io_snapshot()
        path = leaf_path(123, 2**10)
        store.fetch(path)
        reads = store.io_since(before).reads
        assert reads == len(store.allocation.blocks_for(path))
        assert reads <= 5  # the tiling bound for J=10, h=3

    def test_pool_amortizes_repeated_queries(self):
        flat, store = self._store(n=256, block=7, pool=64)
        path = leaf_path(9, 256)
        store.fetch(path)
        before = store.io_snapshot()
        store.fetch(path)
        assert store.io_since(before).reads == 0

    def test_update_changes_value_and_norm(self):
        flat, store = self._store()
        old_norm = store.data_norm
        store.update(10, flat[10] + 5.0)
        got = store.fetch([10])
        assert got[10] == pytest.approx(flat[10] + 5.0)
        expected = np.linalg.norm(
            np.concatenate([flat[:10], [flat[10] + 5.0], flat[11:]])
        )
        assert store.data_norm == pytest.approx(float(expected))
        assert store.data_norm != pytest.approx(old_norm)

    def test_update_bounds_checked(self):
        __, store = self._store()
        with pytest.raises(StorageError):
            store.update(64, 0.0)

    def test_length_mismatch_rejected(self):
        alloc = sequential_allocation(16, 4)
        with pytest.raises(StorageError):
            WaveletBlockStore(np.zeros(8), alloc)

    def test_data_norm(self):
        flat, store = self._store()
        assert store.data_norm == pytest.approx(float(np.linalg.norm(flat)))


class TestTensorBlockStore:
    def _store(self):
        cube = RNG.normal(size=(16, 16))
        alloc = TensorAllocation(
            axes=(
                subtree_tiling_allocation(16, 3),
                subtree_tiling_allocation(16, 3),
            )
        )
        return cube, TensorBlockStore(cube, alloc)

    def test_fetch_values(self):
        cube, store = self._store()
        got = store.fetch([(0, 0), (3, 7), (15, 15)])
        assert got[(3, 7)] == pytest.approx(cube[3, 7])

    def test_io_counting(self):
        cube, store = self._store()
        before = store.io_snapshot()
        indices = [(0, 0), (0, 1), (15, 15)]
        store.fetch(indices)
        assert store.io_since(before).reads == len(store.blocks_for(indices))

    def test_shape_mismatch_rejected(self):
        alloc = TensorAllocation(axes=(subtree_tiling_allocation(16, 3),))
        with pytest.raises(StorageError):
            TensorBlockStore(np.zeros((8,)), alloc)

    def test_norm(self):
        cube, store = self._store()
        assert store.data_norm == pytest.approx(float(np.linalg.norm(cube)))


class TestBlobStore:
    def test_put_get_roundtrip(self):
        store = BlobStore()
        ref = store.put("band0", b"\x01\x02\x03")
        assert store.get(ref) == b"\x01\x02\x03"
        assert ref.n_bytes == 3

    def test_array_roundtrip(self):
        store = BlobStore()
        arr = RNG.normal(size=32)
        ref = store.put_array("coeffs", arr)
        np.testing.assert_allclose(store.get_array(ref), arr)

    def test_location_ids_unique(self):
        store = BlobStore()
        refs = [store.put(f"b{i}", b"x") for i in range(5)]
        assert len({r.location_id for r in refs}) == 5

    def test_delete(self):
        store = BlobStore()
        ref = store.put("gone", b"data")
        store.delete(ref)
        with pytest.raises(StorageError):
            store.get(ref)
        with pytest.raises(StorageError):
            store.delete(ref)

    def test_catalog_and_totals(self):
        store = BlobStore()
        store.put("a", b"12")
        store.put("b", b"3456")
        assert len(store) == 2
        assert store.total_bytes == 6
        names = [r.name for r in store.catalog()]
        assert names == ["a", "b"]

    def test_non_bytes_rejected(self):
        with pytest.raises(StorageError):
            BlobStore().put("bad", [1, 2, 3])


class TestScheduler:
    def test_blocks_ordered_by_importance(self):
        alloc = sequential_allocation(16, 4)
        entries = {0: 10.0, 1: 0.1, 8: 3.0, 15: -20.0}
        plans = plan_blocks(entries, lambda i: int(alloc.block_of[i]))
        scores = [p.importance for p in plans]
        assert scores == sorted(scores, reverse=True)
        # Block of coefficient 15 carries the biggest energy.
        assert plans[0].block_id == int(alloc.block_of[15])

    def test_entries_grouped_per_block(self):
        alloc = sequential_allocation(16, 4)
        entries = {0: 1.0, 1: 2.0, 2: 3.0}
        plans = plan_blocks(entries, lambda i: int(alloc.block_of[i]))
        assert len(plans) == 1
        assert plans[0].entries == entries

    def test_linf_importance(self):
        entries = {0: 3.0, 1: 3.0, 8: 4.0}  # block0 l2=18 > block2 l2=16
        plans_l2 = plan_blocks(entries, lambda i: i // 4, importance="l2")
        plans_linf = plan_blocks(entries, lambda i: i // 4, importance="linf")
        assert plans_l2[0].block_id == 0
        assert plans_linf[0].block_id == 2

    def test_unknown_importance(self):
        with pytest.raises(StorageError):
            plan_blocks({0: 1.0}, lambda i: 0, importance="psychic")

    def test_tuple_keys_supported(self):
        entries = {(0, 1): 2.0, (5, 5): -1.0}
        plans = plan_blocks(entries, lambda key: (key[0] // 4, key[1] // 4))
        assert len(plans) == 2
