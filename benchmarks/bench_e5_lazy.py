"""E5 — §3.3: the lazy wavelet transform translates polynomial range-sums
to the wavelet domain in **polylogarithmic** time, giving query cost
comparable to the best exact MOLAP techniques.

Workload: a linear-measure range-sum over [n/5, 4n/5] for domain sizes
n = 2^10 .. 2^18.  Reported: nonzero query coefficients and translation
wall time per n.  The shape: both grow like log n (a few dozen entries per
doubling), wildly below the O(n) a dense transform pays.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.wavelets.lazy import lazy_range_query_transform

from conftest import format_table

LOG_SIZES = (10, 12, 14, 16, 18)


def translate(n):
    return lazy_range_query_transform(
        [0.0, 1.0], n // 5, 4 * n // 5, n, wavelet="db2"
    )


def run_scaling():
    rows = []
    counts = []
    times = []
    for log_n in LOG_SIZES:
        n = 2**log_n
        start = time.perf_counter()
        sparse = translate(n)
        elapsed = time.perf_counter() - start
        counts.append(len(sparse))
        times.append(elapsed)
        rows.append(
            [f"2^{log_n}", len(sparse), f"{elapsed * 1e3:.2f} ms",
             f"{len(sparse) / n:.5f}"]
        )
    return counts, times, rows


def test_e5_lazy_transform_polylog(emit, benchmark):
    counts, times, rows = run_scaling()
    emit(
        "E5_lazy_transform_scaling",
        format_table(
            ["domain n", "nonzero coeffs", "translate time", "density"], rows
        ),
    )
    # Each quadrupling of n adds only O(filter * levels) coefficients.
    growth = np.diff(counts)
    assert all(g <= 60 for g in growth), f"growth per 4x: {growth}"
    # Density collapses: polylog over n.
    assert counts[-1] / 2 ** LOG_SIZES[-1] < 0.002
    # Largest-domain translation is fast in absolute terms.
    assert times[-1] < 0.5

    # pytest-benchmark timing of the largest case.
    benchmark(translate, 2 ** LOG_SIZES[-1])


def test_e5_translation_exactness_at_scale(emit, benchmark):
    """At n = 2^16 the sparse transform still evaluates range-sums
    exactly against dense data (cost comparability is worthless without
    exactness)."""
    from repro.wavelets.dwt import wavedec

    n = 2**16
    rng = np.random.default_rng(5)
    data = rng.normal(size=n)
    flat = wavedec(data, "db2").to_flat()
    lo, hi = n // 5, 4 * n // 5

    def evaluate():
        sparse = lazy_range_query_transform([0.0, 1.0], lo, hi, n, "db2")
        return sparse.dot(flat)

    got = benchmark(evaluate)
    want = float(np.dot(np.arange(lo, hi + 1), data[lo : hi + 1]))
    assert got == pytest.approx(want, rel=1e-8)
