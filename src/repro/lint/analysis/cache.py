"""Content-hash incremental cache for the deep-analysis layer.

Parsing ~100 files and reducing them to summaries dominates a deep
lint's wall clock; the graph analyses over the summaries are cheap.
So the cache stores the **per-file summaries**, keyed by a sha1 of the
file's bytes: a warm run re-parses only files whose content changed
and rebuilds the cross-file indexes from summaries — which is what
keeps ``aims lint --deep`` inside the CI lint budget (BENCH_p9.json
measures the cold/warm split).

The cache file (default ``.repro-lint-cache.json``, configurable via
``[tool.repro-lint] cache``) is self-invalidating: a schema or
model-version mismatch discards it wholesale, so a stale cache can
slow a run down but never change its findings.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.lint.analysis.model import (
    MODEL_VERSION,
    ModuleSummary,
    summary_from_dict,
    summary_to_dict,
)

__all__ = ["AnalysisCache", "CACHE_SCHEMA"]

CACHE_SCHEMA = "repro.lintcache/v1"


class AnalysisCache:
    """Per-file summary store keyed by content hash."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._entries: dict[str, dict] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if (not isinstance(data, dict)
                or data.get("schema") != CACHE_SCHEMA
                or data.get("model_version") != MODEL_VERSION):
            return
        files = data.get("files")
        if isinstance(files, dict):
            self._entries = files

    def lookup(self, rel_path: str, digest: str) -> ModuleSummary | None:
        """The cached summary for ``rel_path``, if its hash matches."""
        entry = self._entries.get(rel_path)
        if entry is None or entry.get("digest") != digest:
            self.misses += 1
            return None
        try:
            summary = summary_from_dict(entry["summary"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def store(self, rel_path: str, summary: ModuleSummary) -> None:
        """Record a freshly-parsed summary for the next run."""
        self._entries[rel_path] = {
            "digest": summary.digest,
            "summary": summary_to_dict(summary),
        }
        self._dirty = True

    def prune(self, keep) -> None:
        """Drop entries for files that no longer exist in the tree."""
        keep = set(keep)
        stale = [k for k in self._entries if k not in keep]
        for key in stale:
            del self._entries[key]
            self._dirty = True

    def save(self) -> None:
        """Write the cache back atomically (rename over the old file)."""
        if not self._dirty:
            return
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "model_version": MODEL_VERSION,
                "files": self._entries,
            }
        )
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        self._dirty = False
