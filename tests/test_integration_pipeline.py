"""Cross-subsystem integration: acquisition -> streams -> recognition, and
robustness under injected failures."""

import numpy as np
import pytest

from repro.core.errors import AcquisitionError
from repro.acquisition.sampling import AdaptiveSampler
from repro.online.recognizer import RecognizerConfig, StreamRecognizer
from repro.online.vocabulary import MotionVocabulary
from repro.sensors.asl import ASL_VOCABULARY, synthesize_session, synthesize_sign
from repro.sensors.glove import CyberGloveSimulator
from repro.sensors.noise import NoiseModel
from repro.streams.multiplex import multiplex
from repro.streams.sample import frames_to_matrix


class TestSampledStreamRoundtrip:
    def test_samples_multiplex_back_to_frames(self):
        """adaptive sampling -> sample wire format -> multiplexer ->
        frames: the acquisition-to-online hand-off of Fig. 1."""
        sim = CyberGloveSimulator(noise=NoiseModel(white_sigma=0.0))
        session = sim.capture(5.0, np.random.default_rng(0))
        result = AdaptiveSampler().sample(session, sim.rate_hz)

        sensor_ids = list(range(1, 29))
        samples = result.to_samples(session, sensor_ids)
        frames = list(multiplex(samples, sensor_ids, rate_hz=sim.rate_hz))
        assert frames  # stream survived the trip
        matrix = frames_to_matrix(frames)
        assert matrix.shape[1] == 28
        # Zero-order-hold reconstruction tracks the session loosely.
        n = min(matrix.shape[0], session.shape[0])
        err = np.sqrt(np.mean((matrix[:n] - session[:n]) ** 2))
        spread = session.max() - session.min()
        assert err / spread < 0.1

    def test_samples_are_time_ordered(self):
        sim = CyberGloveSimulator(noise=NoiseModel(white_sigma=0.0))
        session = sim.capture(2.0, np.random.default_rng(1))
        result = AdaptiveSampler().sample(session, sim.rate_hz)
        times = [s.timestamp for s in result.to_samples(session, list(range(28)))]
        assert times == sorted(times)

    def test_to_samples_validation(self):
        sim = CyberGloveSimulator()
        session = sim.capture(1.0, np.random.default_rng(2))
        result = AdaptiveSampler().sample(session, sim.rate_hz)
        with pytest.raises(AcquisitionError):
            list(result.to_samples(session, [1, 2]))
        with pytest.raises(AcquisitionError):
            list(result.to_samples(session[:, :3], list(range(28))))


def _trained_recognizer(rng, window=50):
    signs = [ASL_VOCABULARY[i] for i in (5, 7, 9)]
    training = {
        s.name: [synthesize_sign(s, rng).frames for _ in range(4)]
        for s in signs
    }
    vocabulary = MotionVocabulary.from_instances(training)
    recognizer = StreamRecognizer(
        vocabulary,
        RecognizerConfig(window=window, compare_every=10,
                         declare_threshold=0.4, decline_steps=3),
    )
    return signs, recognizer


class TestFailureInjection:
    def test_recognizer_survives_frame_dropouts(self):
        """Randomly dropping 15% of frames (a lossy acquisition path)
        must not break recognition outright."""
        rng = np.random.default_rng(3)
        signs, recognizer = _trained_recognizer(rng)
        frames, segments = synthesize_session(signs, rng, gap_duration=0.8)
        keep = rng.random(frames.shape[0]) > 0.15
        keep[: segments[0].start] = True  # keep the calibration gap
        lossy = frames[keep]
        recognizer.calibrate_rest(frames[: segments[0].start])
        detections = recognizer.process(lossy)
        matches = sum(
            1 for d, s in zip(detections, segments) if d.name == s.name
        )
        assert matches >= len(segments) - 1

    def test_recognizer_survives_sensor_spikes(self):
        """Transient spikes (cable glitches) on top of the stream."""
        rng = np.random.default_rng(4)
        signs, recognizer = _trained_recognizer(rng)
        frames, segments = synthesize_session(signs, rng, gap_duration=0.8)
        spiky = NoiseModel(
            white_sigma=0.0, spike_prob=0.002, spike_scale=30.0
        ).apply(frames, rng)
        recognizer.calibrate_rest(spiky[: segments[0].start])
        detections = recognizer.process(spiky)
        matches = sum(
            1 for d, s in zip(detections, segments) if d.name == s.name
        )
        assert matches >= len(segments) - 1

    def test_recognizer_silent_on_pure_rest(self):
        """A stream with no signs at all must yield no detections."""
        rng = np.random.default_rng(5)
        signs, recognizer = _trained_recognizer(rng)
        frames, segments = synthesize_session(signs, rng)
        rest = frames[: segments[0].start]
        long_rest = np.tile(rest, (10, 1))
        recognizer.calibrate_rest(rest)
        assert recognizer.process(long_rest) == []

    def test_sampler_on_constant_session(self):
        """A dead sensor rig (all channels frozen) still samples sanely."""
        session = np.full((500, 4), 3.14)
        result = AdaptiveSampler().sample(session, 100.0)
        assert result.nrmse(session) == pytest.approx(0.0, abs=1e-12)
        assert result.samples_recorded < session.size / 2
