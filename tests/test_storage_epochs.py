"""Tests for epoch-versioned storage (repro.storage.epochs).

The contract under test is *bitwise* time travel: an ``as_of=e`` query
must return exactly the float the same query returned when epoch ``e``
was current — pre-image reconstruction, identical stored values,
identical reduction order.  Plus the retention mechanics (prune/floor,
the ``retain`` auto-pruning knob) and the read-only discipline of as-of
views.
"""

import numpy as np
import pytest

from repro.core.errors import QueryError, StorageError
from repro.faults.breaker import CircuitBreaker
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.query.ingest import BatchInserter
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery
from repro.query.service import QueryService, shared_scan_view
from repro.storage.device import StorageSpec
from repro.storage.epochs import EpochLog

RNG = np.random.default_rng(41)
SHAPE = (16, 16)
QUERY = RangeSumQuery.count([(2, 11), (3, 14)])


def _engine(**kwargs):
    cube = np.arange(256, dtype=float).reshape(SHAPE) % 7
    kwargs.setdefault("storage", StorageSpec(shards=2, cache_blocks=8))
    return ProPolyneEngine(cube, max_degree=1, block_size=4, **kwargs)


def _history(engine, batches=4, points=30, rng_seed=5):
    """Apply ``batches`` commits; return the live answer after each."""
    rng = np.random.default_rng(rng_seed)
    inserter = BatchInserter(engine)
    answers = [engine.evaluate_exact(QUERY)]
    for b in range(batches):
        pts = [tuple(p) for p in rng.integers(0, 16, size=(points, 2))]
        inserter.insert_batch(pts, [float(b + 1)] * points)
        answers.append(engine.evaluate_exact(QUERY))
    return answers


class TestEpochLog:
    def test_starts_at_epoch_zero(self):
        engine = _engine()
        assert engine.epoch == 0
        engine.enable_versioning()
        assert engine.epoch == 0
        assert engine.epoch_log.stats()["records"] == 0

    def test_every_commit_bumps_the_epoch(self):
        engine = _engine()
        engine.enable_versioning()
        _history(engine, batches=3)
        assert engine.epoch == 3
        stats = engine.epoch_log.stats()
        assert stats["records"] == 3
        assert stats["points"] == 90
        assert stats["blocks_recorded"] > 0

    def test_enable_versioning_is_idempotent(self):
        engine = _engine()
        log = engine.enable_versioning()
        assert engine.enable_versioning() is log

    def test_scalar_insert_is_versioned_too(self):
        engine = _engine()
        engine.enable_versioning()
        before = engine.evaluate_exact(QUERY)
        engine.insert((5, 5), 3.0)
        assert engine.epoch == 1
        assert engine.evaluate_exact(QUERY, as_of=0) == before

    def test_retain_validation(self):
        with pytest.raises(StorageError):
            EpochLog(retain=0)


class TestAsOfBitwise:
    def test_every_recorded_epoch_matches_history(self):
        engine = _engine()
        engine.enable_versioning()
        answers = _history(engine, batches=4)
        for epoch, expected in enumerate(answers):
            got = engine.evaluate_exact(QUERY, as_of=epoch)
            assert got == expected, f"epoch {epoch} drifted"

    def test_epoch_zero_vs_latest(self):
        engine = _engine()
        engine.enable_versioning()
        answers = _history(engine, batches=4)
        assert engine.evaluate_exact(QUERY, as_of=0) == answers[0]
        assert engine.evaluate_exact(QUERY, as_of=4) == answers[-1]
        assert engine.evaluate_exact(QUERY) == answers[-1]

    def test_as_of_view_norms_reproduce_historical_bounds(self):
        engine = _engine()
        engine.enable_versioning()
        view0_norms_before = dict(engine._block_norms)
        _history(engine, batches=2)
        view = engine.as_of_view(0)
        assert view._block_norms == view0_norms_before

    def test_degradable_as_of_matches_exact(self):
        engine = _engine()
        engine.enable_versioning()
        answers = _history(engine, batches=3)
        outcome = engine.evaluate_degradable(QUERY, as_of=1)
        assert not outcome.degraded
        assert outcome.value == answers[1]

    def test_as_of_requires_versioning(self):
        engine = _engine()
        with pytest.raises(QueryError):
            engine.evaluate_exact(QUERY, as_of=0)

    def test_out_of_range_epoch_rejected(self):
        engine = _engine()
        engine.enable_versioning()
        _history(engine, batches=2)
        with pytest.raises(StorageError):
            engine.as_of_view(3)
        with pytest.raises(StorageError):
            engine.as_of_view(-1)

    def test_views_are_read_only(self):
        engine = _engine()
        engine.enable_versioning()
        _history(engine, batches=1)
        view = engine.as_of_view(0)
        with pytest.raises(StorageError):
            view.insert((0, 0))


class TestRetention:
    def test_prune_raises_the_floor(self):
        engine = _engine()
        engine.enable_versioning()
        answers = _history(engine, batches=4)
        dropped = engine.epoch_log.prune(2)
        assert dropped == 2
        assert engine.epoch_log.floor == 2
        with pytest.raises(StorageError):
            engine.evaluate_exact(QUERY, as_of=1)
        assert engine.evaluate_exact(QUERY, as_of=2) == answers[2]
        assert engine.evaluate_exact(QUERY, as_of=4) == answers[4]

    def test_retain_auto_prunes(self):
        engine = _engine()
        engine.enable_versioning(retain=2)
        answers = _history(engine, batches=5)
        log = engine.epoch_log
        assert log.current == 5
        assert log.floor == 3
        assert log.stats()["records"] == 2
        assert engine.evaluate_exact(QUERY, as_of=3) == answers[3]

    def test_prune_is_idempotent(self):
        engine = _engine()
        engine.enable_versioning()
        _history(engine, batches=3)
        assert engine.epoch_log.prune(1) == 1
        assert engine.epoch_log.prune(1) == 0


class TestAsOfThroughService:
    def test_service_as_of_exact_and_degradable(self):
        engine = _engine()
        engine.enable_versioning()
        answers = _history(engine, batches=3)
        with QueryService(engine, workers=2) as service:
            live = service.submit_exact(QUERY).result(timeout=10)
            past = service.submit_exact(QUERY, as_of=1).result(timeout=10)
            outcome = service.submit_degradable(
                QUERY, as_of=2
            ).result(timeout=10)
        assert live == answers[-1]
        assert past == answers[1]
        assert outcome.value == answers[2]
        assert outcome.provenance is not None
        assert outcome.provenance.epoch == 2

    def test_as_of_composes_with_shared_scan_view(self):
        engine = _engine()
        engine.enable_versioning()
        answers = _history(engine, batches=2)
        view = shared_scan_view(engine)
        assert view.evaluate_exact(QUERY, as_of=1) == answers[1]


class TestAsOfUnderFaults:
    def test_dead_shard_degrades_as_of_honestly(self):
        # Blocks no later epoch touched fall through to live storage,
        # so a dead shard degrades the historical answer with a bound
        # instead of inventing history.
        engine = _engine(
            storage=StorageSpec(
                shards=2,
                fault_plan=FaultPlan(seed=3, read_error_rate=1.0),
                fault_shards=(0,),
                retry_policy=RetryPolicy(
                    max_attempts=2, base_delay_s=0.0, budget_s=0.0
                ),
                breaker=CircuitBreaker(
                    failure_threshold=1, recovery_timeout_s=60.0
                ),
            )
        )
        engine.enable_versioning()
        engine.store.set_injecting(False)
        # Commits pinned to one cell: most blocks stay untouched, so an
        # as-of read must fall through to the (now dead) live store.
        inserter = BatchInserter(engine)
        for _ in range(2):
            inserter.insert_batch([(0, 0)] * 10, [1.0] * 10)
        engine.store.set_injecting(True)
        outcome = engine.evaluate_degradable(QUERY, as_of=0)
        assert outcome.degraded
        assert outcome.reason == "storage_unavailable"
        assert outcome.error_bound > 0.0
        assert outcome.blocks_skipped > 0
