"""Continuous-data-stream substrate: samples, frames, sources, windows."""

from repro.streams.buffer import AcquisitionStats, DoubleBuffer
from repro.streams.dropout import GapFiller
from repro.streams.ingest import (
    BandwidthCoordinator,
    IngestService,
    IngestSession,
)
from repro.streams.jitter import perturb_timing
from repro.streams.multiplex import demultiplex, multiplex
from repro.streams.replay import (
    ReplayEvent,
    SessionRecord,
    SessionRecorder,
    SessionReplayer,
)
from repro.streams.sample import Frame, Sample, frames_to_matrix
from repro.streams.source import (
    ArraySource,
    CallbackSource,
    StreamSource,
    concat_sources,
)
from repro.streams.window import SlidingWindow, sliding_windows, tumbling_windows

__all__ = [
    "Sample",
    "Frame",
    "frames_to_matrix",
    "StreamSource",
    "ArraySource",
    "CallbackSource",
    "concat_sources",
    "SlidingWindow",
    "sliding_windows",
    "tumbling_windows",
    "multiplex",
    "perturb_timing",
    "demultiplex",
    "DoubleBuffer",
    "AcquisitionStats",
    "GapFiller",
    "BandwidthCoordinator",
    "IngestService",
    "IngestSession",
    "ReplayEvent",
    "SessionRecord",
    "SessionRecorder",
    "SessionReplayer",
]
