"""Range-sum evaluation in adapted wavelet-packet bases (§3.3.1).

The paper's generalization agenda: "we intend to generalize the mechanism
underlying ProPolyne by looking beyond pure wavelets to find another basis
which may be more effective on a particular dataset ...  there is also a
need for best-basis (or at least good-basis) algorithms that efficiently
select an appropriate basis from a library of possibilities."

This module is that prototype.  Per dimension it selects a basis cover
from the full wavelet-packet library (Coifman–Wickerhauser best basis on
the axis marginal), transforms the cube into the adapted basis, and
evaluates polynomial range-sums exactly there — any orthonormal basis
preserves inner products, so correctness is basis-independent, while
*sparsity* (of the data or of queries) is what the basis choice buys.

Unlike the plain-wavelet engine, query translation here is dense per
dimension (O(n log n)): a *lazy* packet transform is exactly the open
problem the paper defers ("our understanding of this simplified problem
will provide a foundation for future use of the full DWPT").  The
benchmark ablation A3 quantifies what the adapted basis wins on
oscillatory data and what it costs on query sparsity.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import QueryError
from repro.query.propolyne import pad_to_pow2
from repro.query.rangesum import RangeSumQuery
from repro.wavelets.dwt import max_levels
from repro.wavelets.filters import WaveletFilter, get_filter
from repro.wavelets.packet import (
    basis_transform,
    joint_best_basis,
    wavelet_packet_decompose,
)

__all__ = ["cover_transform", "PacketBasisEngine"]


def cover_transform(
    x: np.ndarray, cover: list[str], filt: WaveletFilter
) -> np.ndarray:
    """Transform a signal into a packet basis cover, flattened.

    Subbands are concatenated in sorted-path order, giving a fixed
    length-``n`` coordinate vector for the orthonormal basis the cover
    spans.
    """
    depth = max(len(p) for p in cover)
    tree = wavelet_packet_decompose(x, filt, max_level=depth)
    bands = basis_transform(tree, sorted(cover))
    return np.concatenate([bands[p] for p in sorted(bands)])


class PacketBasisEngine:
    """A cube stored in per-dimension adapted packet bases.

    Args:
        cube: Frequency/measure cube.
        wavelet: Filter for the packet library.
        covers: Optional explicit per-dimension basis covers; defaults to
            the best basis of each axis marginal (the "good-basis
            algorithm ... as part of the database population process").
    """

    def __init__(
        self,
        cube: np.ndarray,
        wavelet: str | WaveletFilter = "db2",
        covers: list[list[str]] | None = None,
    ) -> None:
        self.filter = (
            wavelet if isinstance(wavelet, WaveletFilter) else get_filter(wavelet)
        )
        padded = pad_to_pow2(cube)
        self.original_shape = tuple(np.asarray(cube).shape)
        self.shape = padded.shape
        for axis, n in enumerate(self.shape):
            if max_levels(n, self.filter) < 1:
                raise QueryError(
                    f"axis {axis} (size {n}) too small for packet analysis "
                    f"with {self.filter.length}-tap filter"
                )
        if covers is None:
            covers = []
            for axis in range(padded.ndim):
                # Joint best basis over sample slices along this axis —
                # the "good-basis algorithm as part of the database
                # population process" of §3.3.1.
                moved = np.moveaxis(padded, axis, -1).reshape(
                    -1, padded.shape[axis]
                )
                step = max(1, moved.shape[0] // 8)
                slices = [moved[i] for i in range(0, moved.shape[0], step)]
                covers.append(joint_best_basis(slices, self.filter))
        if len(covers) != padded.ndim:
            raise QueryError(
                f"{len(covers)} covers for a {padded.ndim}-d cube"
            )
        self.covers = [sorted(c) for c in covers]

        transformed = padded.copy()
        for axis, cover in enumerate(self.covers):
            transformed = np.apply_along_axis(
                lambda vec, c=cover: cover_transform(vec, c, self.filter),
                axis,
                transformed,
            )
        self._coeffs = transformed

    def _query_vectors(self, query: RangeSumQuery) -> list[np.ndarray]:
        """Dense per-dimension query vectors in the adapted bases."""
        if query.ndim != len(self.shape):
            raise QueryError(
                f"query has {query.ndim} dimensions, cube has "
                f"{len(self.shape)}"
            )
        vectors = []
        for axis, ((lo, hi), poly) in enumerate(zip(query.ranges, query.polys)):
            if hi >= self.original_shape[axis]:
                raise QueryError(
                    f"dimension {axis}: range [{lo}, {hi}] exceeds domain "
                    f"size {self.original_shape[axis]}"
                )
            dense = np.zeros(self.shape[axis])
            if hi >= lo:
                idx = np.arange(lo, hi + 1, dtype=float)
                dense[lo : hi + 1] = np.polynomial.polynomial.polyval(
                    idx, np.asarray(poly)
                )
            vectors.append(
                cover_transform(dense, self.covers[axis], self.filter)
            )
        return vectors

    def evaluate_exact(self, query: RangeSumQuery) -> float:
        """Exact range-sum via multilinear contraction in the adapted
        basis (orthonormality makes any cover give the same answer)."""
        if query.is_empty():
            return 0.0
        result = self._coeffs
        for vector in reversed(self._query_vectors(query)):
            result = np.tensordot(result, vector, axes=([-1], [0]))
        return float(result)

    def query_sparsity(
        self, query: RangeSumQuery, rel_tol: float = 1e-9
    ) -> int:
        """Number of significant multivariate query coefficients — the
        cost a sparse evaluator in this basis would pay."""
        vectors = self._query_vectors(query)
        counts = []
        for vec in vectors:
            scale = float(np.max(np.abs(vec))) or 1.0
            counts.append(int(np.sum(np.abs(vec) > rel_tol * scale)))
        total = 1
        for c in counts:
            total *= c
        return total

    def compression_error(self, budget: int) -> float:
        """Relative L2 error of keeping the top-``budget`` coefficients in
        this basis — the quantity best-basis selection optimizes."""
        flat = np.abs(self._coeffs.ravel())
        if not 1 <= budget <= flat.size:
            raise QueryError(f"budget {budget} outside [1, {flat.size}]")
        order = np.sort(flat)[::-1]
        dropped = float(np.sum(order[budget:] ** 2))
        total = float(np.sum(order**2)) or 1.0
        return float(np.sqrt(dropped / total))
