"""Block codec: a self-verifying wire/disk format for block payloads.

§4 of the paper plans to move packed coefficient blocks from Teradata
BLOBs to "disk blocks on raw disk".  Raw blocks have no database
underneath to notice bit rot or torn writes, so the codec frames every
payload with a CRC32 and refuses to decode anything that fails the
check — a corrupted block surfaces as a typed
:class:`~repro.core.errors.CorruptedBlockError` instead of silently
wrong coefficients.  The fault-injection layer (:mod:`repro.faults`)
routes "torn block" reads through this codec, which is how the retry
machinery distinguishes a damaged payload (retryable: re-read the
block) from a missing one (not retryable).

Format: ``MAGIC (4 bytes) | CRC32 of body (4 bytes, little-endian) |
body (pickled payload dictionary)``.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Hashable

from repro.core.errors import CorruptedBlockError
from repro.obs import counter as obs_counter

__all__ = ["BLOCK_MAGIC", "block_crc", "decode_block", "encode_block"]

#: Leading frame marker; a payload that does not start with it was
#: overwritten or truncated at rest.
BLOCK_MAGIC = b"AIMS"

_HEADER = struct.Struct("<4sI")


def block_crc(items: dict[Hashable, float]) -> int:
    """CRC32 of a block payload's encoded body (the stored checksum)."""
    return zlib.crc32(_body(items)) & 0xFFFFFFFF


def _body(items: dict[Hashable, float]) -> bytes:
    return pickle.dumps(items, protocol=4)


def encode_block(items: dict[Hashable, float]) -> bytes:
    """Frame one block payload as ``MAGIC | CRC32(body) | body`` bytes."""
    body = _body(items)
    return _HEADER.pack(BLOCK_MAGIC, zlib.crc32(body) & 0xFFFFFFFF) + body


def decode_block(data: bytes) -> dict[Hashable, float]:
    """Decode an :func:`encode_block` frame, verifying its CRC first.

    Raises :class:`~repro.core.errors.CorruptedBlockError` (and ticks the
    ``faults.crc_failures`` counter) on a bad magic, short frame, or CRC
    mismatch — the body is never unpickled unless the checksum holds.
    """
    if len(data) < _HEADER.size or data[:4] != BLOCK_MAGIC:
        obs_counter("faults.crc_failures").inc()
        raise CorruptedBlockError(
            "block frame is truncated or its magic marker is gone"
        )
    _magic, stored = _HEADER.unpack_from(data)
    body = data[_HEADER.size:]
    if zlib.crc32(body) & 0xFFFFFFFF != stored:
        obs_counter("faults.crc_failures").inc()
        raise CorruptedBlockError(
            f"block payload failed its CRC check "
            f"(stored {stored:#010x}, computed "
            f"{zlib.crc32(body) & 0xFFFFFFFF:#010x})"
        )
    return pickle.loads(body)
