"""Tracker motion-speed features for the ADHD study (§2.1).

The paper's successful feature: "the motion speed of different trackers".
For each tracker site the position channels (X, Y, Z) give a translational
speed series and the rotation channels (H, P, R) an angular one; each is
summarized by mean / standard deviation / peak, and the per-site vectors
are concatenated into one subject feature vector.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SchemaError
from repro.sensors.classroom import ClassroomSession

__all__ = ["tracker_speed_features", "session_features", "cohort_features"]

FEATURES_PER_TRACKER = 6  # mean/std/max for translation and rotation speed


def tracker_speed_features(matrix: np.ndarray, rate_hz: float) -> np.ndarray:
    """Speed summary of one tracker's ``(frames, 6)`` stream.

    Returns:
        ``[mean_v, std_v, max_v, mean_w, std_w, max_w]`` where ``v`` is
        translational speed (units/s from X, Y, Z) and ``w`` angular speed
        (deg/s from H, P, R).
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 6 or arr.shape[0] < 2:
        raise SchemaError(
            f"tracker stream must be (frames >= 2, 6), got {arr.shape}"
        )
    if rate_hz <= 0:
        raise SchemaError(f"rate must be positive, got {rate_hz}")
    deltas = np.diff(arr, axis=0) * rate_hz
    trans = np.linalg.norm(deltas[:, :3], axis=1)
    rot = np.linalg.norm(deltas[:, 3:], axis=1)
    return np.array(
        [
            trans.mean(), trans.std(), trans.max(),
            rot.mean(), rot.std(), rot.max(),
        ]
    )


def session_features(session: ClassroomSession) -> np.ndarray:
    """Concatenated per-tracker speed features for one subject session."""
    parts = [
        tracker_speed_features(session.trackers[site], session.rate_hz)
        for site in sorted(session.trackers)
    ]
    return np.concatenate(parts)


def cohort_features(
    sessions: list[ClassroomSession],
) -> tuple[np.ndarray, np.ndarray]:
    """Feature matrix and ±1 labels for a cohort.

    Returns:
        ``(x, y)`` with ``y[i] = +1`` for ADHD subjects, ``-1`` for
        controls.
    """
    if not sessions:
        raise SchemaError("cohort is empty")
    x = np.array([session_features(s) for s in sessions])
    y = np.array(
        [1.0 if s.profile.group == "adhd" else -1.0 for s in sessions]
    )
    return x, y
