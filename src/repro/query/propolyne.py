"""ProPolyne: progressive polynomial range-sum evaluation in the wavelet
domain (§3.3 of the AIMS paper, after Schmidt & Shahabi EDBT'02/PODS'02).

The pipeline:

1. **Population.**  The frequency cube is tensor-wavelet-transformed with a
   filter whose vanishing moments exceed the highest measure degree the
   database should support, and the coefficients are packed onto disk
   blocks by per-axis error-tree tiling (Cartesian-product allocation).
2. **Query translation.**  A polynomial range-sum is translated with the
   *lazy wavelet transform*, one dimension at a time, in polylogarithmic
   time; the multivariate query transform is the outer product of the
   per-dimension sparse vectors.
3. **Exact evaluation** is one sparse inner product against the stored
   coefficients — no inverse transform ever happens ("all computations are
   performed entirely in the wavelet domain").
4. **Progressive evaluation** consumes disk blocks in decreasing query
   importance; after every block the partial sum is reported together with
   a *guaranteed* error bound: per remaining block, Cauchy–Schwarz gives
   ``|missing contribution| <= ||q_block|| * ||data_block||``, and the
   per-block data norms are recorded at population time.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.errors import QueryError, StorageUnavailable
from repro.lint.lockwatch import watched_lock
from repro.obs import DEFAULT_COUNT_BUCKETS
from repro.obs import counter as obs_counter
from repro.obs import histogram as obs_histogram
from repro.obs import span
from repro.query.rangesum import RangeSumQuery
from repro.storage.allocation import TensorAllocation, subtree_tiling_allocation
from repro.storage.blockstore import TensorBlockStore
from repro.storage.scheduler import plan_blocks
from repro.wavelets.dwt import max_levels
from repro.wavelets.filters import get_filter
from repro.wavelets.lazy import cached_range_query_transform
from repro.wavelets.tensor import tensor_wavedec

__all__ = [
    "ProgressiveEstimate",
    "ProPolyneEngine",
    "QueryOutcome",
    "pad_to_pow2",
    "sparse_inner_product",
    "translate_query",
]


def sparse_inner_product(entries: dict, stored) -> float:
    """The one exact reduction kernel: ``sum(q[i] * stored[i])``.

    Every exact answer in the engine — plain, degradable, and the batch
    evaluator's vectorized path — reduces through this same
    ``np.dot`` over arrays laid out in ``entries``' iteration order.
    Float addition is not associative, so funneling all paths through
    one kernel (same operand order, same BLAS reduction) is what makes
    their answers *bitwise*-identical rather than merely close.

    Args:
        entries: Sparse query transform (key -> query coefficient).
        stored: Mapping from the same keys to stored coefficients.
    """
    count = len(entries)
    if count == 0:
        return 0.0
    qvals = np.fromiter(entries.values(), dtype=float, count=count)
    dvals = np.fromiter(
        (stored[idx] for idx in entries), dtype=float, count=count
    )
    return float(np.dot(qvals, dvals))


def translate_query(
    query: RangeSumQuery,
    original_shape: tuple[int, ...],
    padded_shape: tuple[int, ...],
    levels: tuple[int, ...],
    filt,
) -> dict[tuple[int, ...], float]:
    """Sparse multivariate wavelet transform of a range-sum query vector.

    Shared by the ProPolyne engine and the data-approximation baseline so
    both answer precisely the same translated query.  Runs the lazy
    transform per dimension and takes the outer product of the sparse
    per-dimension vectors.
    """
    if query.ndim != len(padded_shape):
        raise QueryError(
            f"query has {query.ndim} dimensions, cube has {len(padded_shape)}"
        )
    if query.max_degree >= filt.vanishing_moments:
        raise QueryError(
            f"measure degree {query.max_degree} needs a filter with more "
            f"than {filt.vanishing_moments} vanishing moments"
        )
    if query.is_empty():
        return {}
    partial: dict[tuple[int, ...], float] = {(): 1.0}
    for axis, ((lo, hi), poly) in enumerate(zip(query.ranges, query.polys)):
        if hi >= original_shape[axis]:
            raise QueryError(
                f"dimension {axis}: range [{lo}, {hi}] exceeds domain size "
                f"{original_shape[axis]}"
            )
        if levels[axis] == 0:
            # Axis too small for the cascade: stored in the standard
            # basis (§3.1.1's multi-bases rule), so the "transform" of
            # the query vector is the vector itself.
            positions = np.arange(lo, hi + 1, dtype=float)
            weights = np.polynomial.polynomial.polyval(
                positions, np.asarray(poly)
            )
            entries = {
                int(j): float(w)
                for j, w in zip(range(lo, hi + 1), np.atleast_1d(weights))
                if w != 0.0
            }
        else:
            # Memoized per-dimension transform: group-by / drill-down
            # workloads repeat dimension ranges constantly, and the memo
            # turns those repeats into a dictionary lookup.  The cached
            # vector is shared, so ``entries`` is read-only here.
            sparse = cached_range_query_transform(
                list(poly), lo, hi, padded_shape[axis],
                wavelet=filt, levels=levels[axis],
            )
            entries = sparse.entries
        grown: dict[tuple[int, ...], float] = {}
        for prefix, pval in partial.items():
            for idx, qval in entries.items():
                product = pval * qval
                if product != 0.0:
                    grown[prefix + (idx,)] = product
        partial = grown
        if not partial:
            return {}
    return partial


def pad_to_pow2(cube: np.ndarray) -> np.ndarray:
    """Zero-pad every axis up to the next power of two.

    Padding a *frequency* cube with zeros changes no range-sum whose range
    lies in the original domain, and gives the cascade the dyadic sizes it
    wants.
    """
    data = np.asarray(cube, dtype=float)
    target = tuple(1 << max(1, (n - 1).bit_length()) for n in data.shape)
    if target == data.shape:
        return data.copy()
    out = np.zeros(target)
    out[tuple(slice(0, n) for n in data.shape)] = data
    return out


@dataclass(frozen=True)
class ProgressiveEstimate:
    """State of a progressive evaluation after one more block arrived.

    Attributes:
        estimate: Partial sum — the exact contribution of every
            coefficient fetched so far.
        error_bound: Guaranteed ceiling on ``|estimate - exact|``
            (per-block Cauchy–Schwarz).
        error_estimate: *Probabilistic* one-standard-deviation error
            forecast — §3.3.1's "accurate error estimates and confidence
            intervals without significant computational overhead".
            Modeling each unseen block's data energy as spread evenly over
            its coefficients with random signs, the missing contribution
            has variance ``sum_blocks ||q_B||^2 * ||d_B||^2 / |B|``; this
            field is its square root.  Typically far tighter than the
            guarantee (and occasionally exceeded — it is a forecast).
        blocks_read: Disk blocks fetched so far.
        coefficients_used: Query coefficients consumed so far.
    """

    estimate: float
    error_bound: float
    error_estimate: float
    blocks_read: int
    coefficients_used: int

    def confidence_interval(self, z: float = 2.0) -> tuple[float, float]:
        """Forecast interval ``estimate ± z * error_estimate``, clipped to
        the guaranteed bound."""
        half = min(z * self.error_estimate, self.error_bound)
        return (self.estimate - half, self.estimate + half)


@dataclass(frozen=True)
class QueryOutcome:
    """What a degradation-aware evaluation actually delivered.

    A degraded answer is never silent: ``degraded`` is explicit, the
    guaranteed ``error_bound`` is always finite, and ``reason`` names
    what cut the evaluation short.

    Attributes:
        value: The answer — exact when ``degraded`` is False, otherwise
            the best progressive estimate computed before the cutoff.
        degraded: True when the evaluation could not run to completion.
        error_bound: Guaranteed ceiling on ``|value - exact|`` (0.0 for
            an exact answer).
        error_estimate: Probabilistic one-sigma error forecast (0.0 for
            an exact answer).
        blocks_read: Disk blocks fetched before delivering.
        reason: ``None`` (exact), ``"deadline"`` (per-query deadline
            hit) or ``"storage_unavailable"`` (retries exhausted or a
            circuit breaker is open).
        blocks_skipped: Blocks whose shard/device was unavailable and
            whose error-bound mass therefore stays in ``error_bound``
            — on a sharded stack a single failed shard skips only its
            own blocks while surviving shards still answer.
        provenance: Optional structured audit record
            (:class:`~repro.query.explain.QueryProvenance`) attached by
            :func:`~repro.query.explain.attach_provenance` or the
            query service — which epoch answered, which blocks/shards
            were touched, breaker states, and the degradation story.
            ``None`` when no provenance was requested.
    """

    value: float
    degraded: bool
    error_bound: float
    error_estimate: float
    blocks_read: int
    reason: str | None = None
    blocks_skipped: int = 0
    provenance: object | None = None


class ProPolyneEngine:
    """A populated ProPolyne data cube.

    Args:
        cube: Frequency/measure cube (any shape; axes are zero-padded to
            powers of two).
        max_degree: Highest measure-polynomial degree queries will use;
            the filter gets ``max_degree + 1`` vanishing moments so those
            queries transform sparsely.
        block_size: Per-axis virtual block size for the tiling allocation.
        pool_capacity: Optional cache size (blocks) — legacy kwarg,
            folded into a :class:`~repro.storage.device.StorageSpec`.
        fault_plan: Optional :class:`~repro.faults.plan.FaultPlan` — the
            store's device stack injects faults per that schedule.
        retry_policy: Optional :class:`~repro.faults.retry.RetryPolicy`
            absorbing transient read faults.
        breaker: Optional :class:`~repro.faults.breaker.CircuitBreaker`
            failing reads fast during persistent outages.
        storage: Full declarative
            :class:`~repro.storage.device.StorageSpec` (shards, cache,
            faults, resilience, latency); mutually exclusive with the
            four legacy kwargs above.
    """

    def __init__(
        self,
        cube: np.ndarray,
        max_degree: int = 2,
        block_size: int = 7,
        pool_capacity: int | None = None,
        fault_plan=None,
        retry_policy=None,
        breaker=None,
        storage=None,
    ) -> None:
        if max_degree < 0:
            raise QueryError(f"max_degree must be >= 0, got {max_degree}")
        original_shape = tuple(np.asarray(cube).shape)
        padded = pad_to_pow2(cube)
        filt = get_filter(f"db{max_degree + 1}")
        levels = tuple(max_levels(n, filt) for n in padded.shape)
        if all(depth == 0 for depth in levels):
            raise QueryError(
                f"every axis of shape {padded.shape} is too small for "
                f"filter {filt.name} ({filt.length} taps); "
                f"nothing would be wavelet-transformed"
            )
        coeffs = tensor_wavedec(padded, filt, levels=levels)
        self._init_from_coefficients(
            coeffs,
            original_shape,
            max_degree,
            block_size,
            pool_capacity=pool_capacity,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            breaker=breaker,
            storage=storage,
        )

    def _init_from_coefficients(
        self,
        coeffs: np.ndarray,
        original_shape: tuple[int, ...],
        max_degree: int,
        block_size: int,
        pool_capacity: int | None = None,
        fault_plan=None,
        retry_policy=None,
        breaker=None,
        storage=None,
    ) -> None:
        self.original_shape = tuple(original_shape)
        self.max_degree = max_degree
        self.block_size = block_size
        self.filter = get_filter(f"db{max_degree + 1}")
        self.shape = tuple(coeffs.shape)
        # Axes too small for the cascade stay in the standard basis
        # (cascade depth 0) — the paper's multi-bases rule for
        # low-cardinality dimensions like sensor ids.
        self.levels = tuple(max_levels(n, self.filter) for n in self.shape)
        allocation = TensorAllocation(
            axes=tuple(
                subtree_tiling_allocation(n, block_size) for n in self.shape
            )
        )
        self.store = TensorBlockStore(
            coeffs,
            allocation,
            pool_capacity=pool_capacity,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            breaker=breaker,
            storage=storage,
        )
        self.breaker = self.store.breaker
        blocks = allocation.build_blocks(coeffs)
        self._block_norms = {
            block_id: float(math.sqrt(sum(v * v for v in items.values())))
            for block_id, items in blocks.items()
        }
        self._block_sizes = {
            block_id: len(items) for block_id, items in blocks.items()
        }
        # Serializes every mutation of stored coefficients and norm
        # bookkeeping: concurrent inserts used to race their per-block
        # read-modify-writes (lost updates); readers stay lock-free.
        self._update_lock = watched_lock("query.engine_update")
        # Lazily-built batch-append kernel (repro.query.ingest); the
        # scalar insert path routes through it as a batch of one.
        self._inserter = None
        # Opt-in epoch versioning (enable_versioning); None = live-only.
        self._epoch_log = None

    @classmethod
    def from_coefficients(
        cls,
        coeffs: np.ndarray,
        original_shape: tuple[int, ...],
        max_degree: int = 2,
        block_size: int = 7,
        storage=None,
    ) -> "ProPolyneEngine":
        """Rebuild an engine from an already-transformed coefficient cube.

        The inverse of :meth:`to_coefficients`: the coefficients are
        stored *as given* — no inverse/forward transform round trip —
        so a replica built from another engine's read-back coefficients
        answers every query bitwise-identically to the original.  This
        is the contract process-pool workers rely on
        (:mod:`repro.query.procpool`).

        Args:
            coeffs: Padded coefficient cube (power-of-two axes, in the
                layout :meth:`to_coefficients` produces).
            original_shape: Pre-padding data-cube shape (query-domain
                bounds checks use it).
            max_degree: Highest supported measure-polynomial degree.
            block_size: Per-axis virtual block size for the tiling.
            storage: Optional :class:`~repro.storage.device.StorageSpec`.
        """
        if max_degree < 0:
            raise QueryError(f"max_degree must be >= 0, got {max_degree}")
        engine = cls.__new__(cls)
        engine._init_from_coefficients(
            np.asarray(coeffs, dtype=float),
            original_shape,
            max_degree,
            block_size,
            storage=storage,
        )
        return engine

    # -- epoch versioning ----------------------------------------------------

    def enable_versioning(self, retain: int | None = None):
        """Turn on epoch-versioned storage for this engine (idempotent).

        From this call on, every committed batch append bumps the
        engine's :attr:`epoch` and records the touched blocks'
        pre-images in an :class:`~repro.storage.epochs.EpochLog`, so
        :meth:`as_of_view` / ``as_of=`` queries can reconstruct any
        retained past state bitwise-exactly.  The current state at the
        moment of this call becomes epoch 0.

        Args:
            retain: Keep at most this many most-recent epochs
                reconstructable (``None`` = unbounded; see the
                retention runbook in ``docs/OPERATIONS.md``).

        Returns:
            The engine's :class:`~repro.storage.epochs.EpochLog`.
        """
        from repro.storage.epochs import EpochLog

        with self._update_lock:
            if self._epoch_log is None:
                self._epoch_log = EpochLog(retain=retain)
        return self._epoch_log

    @property
    def epoch(self) -> int:
        """Current storage epoch (0 until versioning records a commit)."""
        log = self._epoch_log
        return 0 if log is None else log.current

    @property
    def epoch_log(self):
        """The engine's :class:`~repro.storage.epochs.EpochLog`, or
        ``None`` when versioning is disabled."""
        return self._epoch_log

    def as_of_view(self, epoch: int) -> "ProPolyneEngine":
        """A read-only engine view pinned to a past storage epoch.

        The view shares the live engine's translation machinery and
        falls through to live storage for blocks no later epoch
        touched; blocks with logged pre-images are served from the
        epoch log with zero device I/O.  Its ``_block_norms`` are
        reconstructed as of ``epoch``, so progressive error bounds are
        the bounds that held *then*.  Route updates to the live engine
        — the view refuses them.

        Args:
            epoch: Target epoch in ``[floor, current]`` (0 is the
                state when versioning was enabled).
        """
        import copy

        from repro.storage.epochs import AsOfStore

        if self._epoch_log is None:
            raise QueryError(
                "as-of queries need versioning: call "
                "engine.enable_versioning() before the writes you want "
                "to travel back over"
            )
        view = copy.copy(self)
        view.store = AsOfStore(self.store, self._epoch_log, epoch)
        view._block_norms = self._epoch_log.norms_as_of(
            epoch, self._block_norms
        )
        # Views are frozen history: no inserter, and no further as-of
        # hops (the log belongs to the live engine).
        view._inserter = None
        return view

    # -- query translation -------------------------------------------------

    def query_entries(
        self, query: RangeSumQuery
    ) -> dict[tuple[int, ...], float]:
        """Sparse multivariate wavelet transform of the query vector.

        Runs the lazy transform per dimension and takes the outer product.
        Complexity: product of per-dimension sparse sizes, each
        ``O(filter_length * log n)``.
        """
        return translate_query(
            query, self.original_shape, self.shape, self.levels, self.filter
        )

    def n_query_coefficients(self, query: RangeSumQuery) -> int:
        """Size of the sparse query transform (the E5 metric)."""
        return len(self.query_entries(query))

    # -- evaluation ---------------------------------------------------------

    def evaluate_exact(
        self, query: RangeSumQuery, as_of: int | None = None
    ) -> float:
        """Exact answer: one sparse inner product in the wavelet domain.

        Args:
            query: The range-sum to evaluate.
            as_of: Optional storage epoch to evaluate against
                (versioned engines only) — the answer is bitwise-equal
                to what :meth:`evaluate_exact` returned when that epoch
                was current, because the as-of view reconstructs the
                identical stored values and reduces through the same
                kernel in the same order.
        """
        if as_of is not None:
            obs_counter("epoch.as_of_queries").inc()
            return self.as_of_view(as_of).evaluate_exact(query)
        with span("query.exact"):
            obs_counter("query.exact.queries").inc()
            entries = self.query_entries(query)
            if not entries:
                return 0.0
            # store.fetch observes query.blocks_per_query — it already
            # knows the block set, so the engine need not recompute it.
            stored = self.store.fetch(list(entries))
            return sparse_inner_product(entries, stored)

    def _progressive_steps(
        self, entries: dict, importance: str = "l2",
        skip_unavailable: bool = False,
    ) -> Iterator[tuple]:
        """The progressive evaluation loop, one step per fetched block.

        Yields ``(estimate, plan, block, remaining)`` tuples; the first
        yield is a zero-I/O priming step (``plan``/``block`` ``None``)
        carrying the total a-priori error bound, and ``remaining``
        counts the blocks still unprocessed after the step.  Both
        :meth:`evaluate_progressive` (which drops the priming step and
        the payloads) and :meth:`evaluate_degradable` (which needs the
        payloads for the exact final sum and the priming bound for
        zero-block degradation) consume this generator, so the two
        paths can never drift apart numerically.

        With ``skip_unavailable`` True, a block whose read raises
        :class:`~repro.core.errors.StorageUnavailable` is *skipped*
        instead of aborting the loop: its Cauchy–Schwarz mass stays in
        the running error bound, the step yields ``block`` ``None``
        (with ``plan`` set) as the skip marker, and evaluation
        continues — on a sharded device this is exactly per-shard
        degradation, since only the failed shard's blocks skip.
        """
        plans = plan_blocks(
            entries, self.store.allocation.block_of, importance=importance
        )
        # Most valuable I/O first: a block's worth is the error-bound mass
        # it removes, ||q_block|| * ||data_block|| — query importance alone
        # would chase boundary details that the (smooth) data never stored
        # any energy in.
        plans.sort(
            key=lambda plan: -(
                math.sqrt(sum(v * v for v in plan.entries.values()))
                * self._block_norms.get(plan.block_id, 0.0)
            )
        )
        block_q_norm = {
            plan.block_id: math.sqrt(
                sum(v * v for v in plan.entries.values())
            )
            for plan in plans
        }
        remaining_bound = sum(
            block_q_norm[plan.block_id]
            * self._block_norms.get(plan.block_id, 0.0)
            for plan in plans
        )
        # Forecast variance: unseen block's contribution modeled as
        # ||q_B||^2 * ||d_B||^2 / |B| (energy spread evenly, random signs).
        remaining_variance = sum(
            (
                block_q_norm[plan.block_id]
                * self._block_norms.get(plan.block_id, 0.0)
            )
            ** 2
            / max(self._block_sizes.get(plan.block_id, 1), 1)
            for plan in plans
        )
        obs_counter("query.progressive.queries").inc()
        obs_histogram(
            "query.blocks_per_query", DEFAULT_COUNT_BUCKETS
        ).observe(len(plans))
        priming_bound = max(0.0, remaining_bound)
        yield (
            ProgressiveEstimate(
                estimate=0.0,
                error_bound=priming_bound,
                error_estimate=min(
                    math.sqrt(max(0.0, remaining_variance)), priming_bound
                ),
                blocks_read=0,
                coefficients_used=0,
            ),
            None,
            None,
            len(plans),
        )
        estimate = 0.0
        used = 0
        reads = 0
        for step, plan in enumerate(plans, start=1):
            obs_counter("query.progressive.blocks").inc()
            if skip_unavailable:
                try:
                    block = self.store.fetch_block(plan.block_id)
                except StorageUnavailable:
                    # Skip marker: the block's bound mass stays in the
                    # running totals, since its contribution is unknown.
                    yield (
                        ProgressiveEstimate(
                            estimate=estimate,
                            error_bound=max(0.0, remaining_bound),
                            error_estimate=min(
                                math.sqrt(max(0.0, remaining_variance)),
                                max(0.0, remaining_bound),
                            ),
                            blocks_read=reads,
                            coefficients_used=used,
                        ),
                        plan,
                        None,
                        len(plans) - step,
                    )
                    continue
            else:
                block = self.store.fetch_block(plan.block_id)
            contribution = sum(
                qval * block[idx] for idx, qval in plan.entries.items()
            )
            estimate += float(contribution)
            used += len(plan.entries)
            reads += 1
            q_norm = block_q_norm[plan.block_id]
            d_norm = self._block_norms.get(plan.block_id, 0.0)
            remaining_bound -= q_norm * d_norm
            remaining_variance -= (q_norm * d_norm) ** 2 / max(
                self._block_sizes.get(plan.block_id, 1), 1
            )
            bound = max(0.0, remaining_bound)
            yield (
                ProgressiveEstimate(
                    estimate=estimate,
                    error_bound=bound,
                    # The forecast can never legitimately exceed the hard
                    # guarantee; clamping also absorbs accumulator float
                    # dust.
                    error_estimate=min(
                        math.sqrt(max(0.0, remaining_variance)), bound
                    ),
                    blocks_read=reads,
                    coefficients_used=used,
                ),
                plan,
                block,
                len(plans) - step,
            )

    def evaluate_progressive(
        self,
        query: RangeSumQuery,
        importance: str = "l2",
    ) -> Iterator[ProgressiveEstimate]:
        """Progressive evaluation: one estimate per fetched block.

        Blocks arrive in decreasing query importance; each estimate's
        ``error_bound`` is the summed per-block Cauchy–Schwarz ceiling for
        everything not yet fetched — a guarantee, not a heuristic.
        """
        entries = self.query_entries(query)
        if not entries:
            yield ProgressiveEstimate(0.0, 0.0, 0.0, 0, 0)
            return
        steps = self._progressive_steps(entries, importance)
        next(steps)  # the zero-I/O priming step is not an estimate
        for est, _plan, _block, _remaining in steps:
            yield est

    def evaluate_degradable(
        self,
        query: RangeSumQuery,
        deadline_s: float | None = None,
        importance: str = "l2",
        clock=time.monotonic,
        as_of: int | None = None,
    ) -> QueryOutcome:
        """Exact evaluation that degrades instead of failing or stalling.

        Consumes blocks progressively (best-first, so an early cutoff
        keeps the most valuable I/O); when every block arrived, the
        answer is recomputed as the same inner product, in the same
        term order, as :meth:`evaluate_exact` — bitwise-identical to
        the plain exact path.  Two things cut the evaluation short,
        both producing an explicit degraded outcome rather than an
        exception or a silent wrong answer:

        * the per-query ``deadline_s`` elapses with blocks still
          unfetched (checked between block fetches — the evaluation
          never abandons a block mid-read);
        * storage becomes unavailable
          (:class:`~repro.core.errors.StorageUnavailable` from the
          retry/breaker stack) — the failed block is *skipped*, its
          error-bound mass is kept, and evaluation continues over
          whatever storage still answers.  On a sharded device stack
          each shard carries its own breaker, so one failed shard
          skips only its own blocks while the surviving shards'
          contributions are still summed exactly.

        Args:
            query: The range-sum to evaluate.
            deadline_s: Wall-clock allowance, measured from this call.
            importance: Block-ordering objective (``"l2"``/``"linf"``).
            clock: Injectable monotonic clock (tests pin time).
            as_of: Optional storage epoch to evaluate against
                (versioned engines only) — logged blocks come from
                pre-images, live fallthrough blocks can still degrade,
                so a historical answer stays honest about outages.

        Returns:
            A :class:`QueryOutcome`; ``degraded`` outcomes carry the
            best estimate so far with a finite guaranteed error bound.
        """
        if as_of is not None:
            obs_counter("epoch.as_of_queries").inc()
            return self.as_of_view(as_of).evaluate_degradable(
                query, deadline_s=deadline_s, importance=importance,
                clock=clock,
            )
        entries = self.query_entries(query)
        if not entries:
            return QueryOutcome(0.0, False, 0.0, 0.0, 0, None)
        started = clock()
        steps = self._progressive_steps(
            entries, importance, skip_unavailable=True
        )
        stored: dict = {}
        last: ProgressiveEstimate | None = None
        reason: str | None = None
        skipped = 0
        while True:
            try:
                est, plan, block, remaining = next(steps)
            except StopIteration:
                break
            except StorageUnavailable:
                # Defensive: per-block faults are skipped inside the
                # generator; this catches failures outside a fetch.
                reason = "storage_unavailable"
                break
            last = est
            if plan is not None:
                if block is None:
                    skipped += 1
                else:
                    for idx in plan.entries:
                        stored[idx] = block[idx]
            if (
                reason is None
                and deadline_s is not None
                and remaining > 0
                and clock() - started >= deadline_s
            ):
                reason = "deadline"
                break
        if reason is None and skipped:
            reason = "storage_unavailable"
        if reason is None:
            # Same reduction kernel and term order as evaluate_exact:
            # bitwise-identical value.
            value = sparse_inner_product(entries, stored)
            return QueryOutcome(
                value, False, 0.0, 0.0,
                last.blocks_read if last is not None else 0, None,
            )
        # The priming step precedes any I/O, so a storage fault or
        # deadline can only fire with ``last`` populated.
        obs_counter("query.degraded").inc()
        obs_counter(f"query.degraded.{reason}").inc()
        return QueryOutcome(
            value=last.estimate,
            degraded=True,
            error_bound=last.error_bound,
            error_estimate=last.error_estimate,
            blocks_read=last.blocks_read,
            reason=reason,
            blocks_skipped=skipped,
        )

    def to_coefficients(self) -> np.ndarray:
        """Dense coefficient cube read back from the block store.

        The serialization surface: together with ``original_shape``,
        ``max_degree`` and the block size this fully reconstructs the
        engine (used by the AIMS facade's save/load path).
        """
        cube = np.zeros(self.shape)
        for block_id in self.store.device.block_ids():
            for idx, value in self.store.fetch_block(block_id).items():
                cube[idx] = value
        return cube

    # -- updates ------------------------------------------------------------

    def insert(self, point: tuple[int, ...], weight: float = 1.0) -> int:
        """Append one tuple to the frequency cube, in place, on disk.

        This is the append path §3.1.1 picks wavelets for: "the complexity
        of wavelet transformation for incremental update (append) is low".
        Adding ``weight`` at ``point`` perturbs the data vector by a scaled
        unit impulse, and by linearity the stored coefficients change by
        ``weight * W(e_point)`` — whose per-dimension transform is exactly
        the lazy transform of the width-one range ``[p, p]``, i.e.
        O(filter_length * log n) coefficients per dimension.

        Args:
            point: Attribute values of the new tuple (original domain).
            weight: Count increment (can be negative for deletion).

        Returns:
            The number of stored coefficients touched.
        """
        if len(point) != len(self.shape):
            raise QueryError(
                f"point arity {len(point)} != cube dimensionality "
                f"{len(self.shape)}"
            )
        for axis, p in enumerate(point):
            if not 0 <= p < self.original_shape[axis]:
                raise QueryError(
                    f"dimension {axis}: value {p} outside domain "
                    f"[0, {self.original_shape[axis]})"
                )
        # Route through the vectorized batch kernel as a batch of one:
        # scalar and batched appends share one code path (and the engine
        # update lock), so they can never drift apart numerically.
        if self._inserter is None:
            from repro.query.ingest import BatchInserter

            self._inserter = BatchInserter(self)
        return self._inserter.insert_batch(
            [tuple(int(p) for p in point)], [float(weight)]
        )

    def evaluate_approximate(
        self, query: RangeSumQuery, block_budget: int
    ) -> ProgressiveEstimate:
        """Best estimate achievable within a block-I/O budget."""
        if block_budget < 1:
            raise QueryError(f"block budget must be >= 1, got {block_budget}")
        last = ProgressiveEstimate(0.0, float("inf"), float("inf"), 0, 0)
        for est in self.evaluate_progressive(query):
            last = est
            if est.blocks_read >= block_budget:
                break
        return last
