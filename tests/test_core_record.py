"""Tests for the immersidata record schema (repro.core.record)."""

import numpy as np
import pytest

from repro.core.errors import SchemaError
from repro.core.record import (
    RECORD_FIELDS,
    ImmersidataRecord,
    records_to_relation,
)


def make_record(sensor_id=1, t=0.5, **kw):
    defaults = dict(x=1.0, y=2.0, z=3.0, h=10.0, p=-5.0, r=0.0)
    defaults.update(kw)
    return ImmersidataRecord(sensor_id=sensor_id, timestamp=t, **defaults)


class TestRecord:
    def test_eight_dimensions(self):
        """§2.1: 'the data set in general has 8 dimensions'."""
        assert len(RECORD_FIELDS) == 8
        assert RECORD_FIELDS[0] == "sensor_id"
        assert RECORD_FIELDS[1] == "timestamp"

    def test_as_tuple_order(self):
        record = make_record()
        assert record.as_tuple() == (1.0, 0.5, 1.0, 2.0, 3.0, 10.0, -5.0, 0.0)

    def test_validation(self):
        with pytest.raises(SchemaError):
            make_record(sensor_id=-1)
        with pytest.raises(SchemaError):
            make_record(t=-0.1)
        with pytest.raises(SchemaError):
            make_record(h=400.0)


class TestRecordsToRelation:
    def _records(self, n=50, seed=0):
        rng = np.random.default_rng(seed)
        return [
            make_record(
                sensor_id=int(rng.integers(0, 4)),
                t=float(i) * 0.01,
                x=float(rng.normal()),
                y=float(rng.normal()),
                z=float(rng.normal()),
            )
            for i, __ in enumerate(range(n))
        ]

    def test_shapes_and_domains(self):
        records = self._records()
        relation, shape, scales = records_to_relation(
            records, ("sensor_id", "timestamp", "x"),
            bins={"sensor_id": 4, "timestamp": 16, "x": 8},
        )
        assert relation.shape == (50, 3)
        assert shape == (4, 16, 8)
        assert np.all(relation >= 0)
        for d, size in enumerate(shape):
            assert relation[:, d].max() < size

    def test_sensor_id_not_quantized(self):
        records = self._records()
        relation, __, scales = records_to_relation(
            records, ("sensor_id",), bins={"sensor_id": 4}
        )
        original = [r.sensor_id for r in records]
        assert relation[:, 0].tolist() == original
        assert scales["sensor_id"] == (0.0, 1.0)

    def test_dequantization_accuracy(self):
        records = self._records()
        relation, __, scales = records_to_relation(
            records, ("x",), bins={"x": 64}
        )
        lo, step = scales["x"]
        restored = lo + relation[:, 0] * step
        original = np.array([r.x for r in records])
        assert np.max(np.abs(restored - original)) <= step / 2 + 1e-12

    def test_validation(self):
        with pytest.raises(SchemaError):
            records_to_relation([], ("x",), {"x": 4})
        records = self._records(5)
        with pytest.raises(SchemaError):
            records_to_relation(records, ("wingspan",), {"wingspan": 4})
        with pytest.raises(SchemaError):
            records_to_relation(records, ("x",), {})
        with pytest.raises(SchemaError):
            records_to_relation(records, ("x",), {"x": 1})
        with pytest.raises(SchemaError):
            records_to_relation(records, ("sensor_id",), {"sensor_id": 2})
