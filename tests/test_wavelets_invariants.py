"""Additional wavelet invariants: shifts, cascades, energy ordering.

These complement the per-module tests with cross-cutting identities of
the periodized transform that the storage and query layers silently rely
on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wavelets.dwt import dwt_level, max_levels, wavedec, waverec
from repro.wavelets.filters import daubechies, get_filter, haar
from repro.wavelets.lazy import lazy_range_query_transform


RNG = np.random.default_rng(261)


class TestShiftInvariants:
    def test_even_shift_permutes_haar_bands(self):
        """Circularly shifting a signal by 2 shifts each Haar band's
        coefficients by 1 (periodized transforms are shift-covariant at
        the matching dyadic scale)."""
        x = RNG.normal(size=32)
        shifted = np.roll(x, 2)
        a1, d1 = dwt_level(x, haar())
        a2, d2 = dwt_level(shifted, haar())
        np.testing.assert_allclose(a2, np.roll(a1, 1), atol=1e-12)
        np.testing.assert_allclose(d2, np.roll(d1, 1), atol=1e-12)

    def test_energy_shift_invariant(self):
        x = RNG.normal(size=64)
        for shift in (1, 7, 33):
            assert wavedec(np.roll(x, shift), "db3").energy() == pytest.approx(
                wavedec(x, "db3").energy()
            )

    @settings(max_examples=20, deadline=None)
    @given(shift=st.integers(0, 63), seed=st.integers(0, 200))
    def test_roundtrip_commutes_with_shift(self, shift, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=64)
        direct = np.roll(waverec(wavedec(x, "db2")), shift)
        shifted = waverec(wavedec(np.roll(x, shift), "db2"))
        np.testing.assert_allclose(direct, shifted, atol=1e-9)


class TestCascadeStructure:
    def test_deep_cascade_equals_stepwise(self):
        x = RNG.normal(size=64)
        filt = daubechies(2)
        full = wavedec(x, filt, levels=3)
        # Step it manually.
        a, d1 = dwt_level(x, filt)
        a, d2 = dwt_level(a, filt)
        a, d3 = dwt_level(a, filt)
        np.testing.assert_allclose(full.approx, a, atol=1e-12)
        np.testing.assert_allclose(full.details[0], d3, atol=1e-12)
        np.testing.assert_allclose(full.details[-1], d1, atol=1e-12)

    def test_coarse_band_energy_dominates_for_smooth_signals(self):
        t = np.linspace(0, 1, 256, endpoint=False)
        smooth = np.sin(2 * np.pi * t)
        coeffs = wavedec(smooth, "db4")
        coarse = float(np.dot(coeffs.approx, coeffs.approx)) + sum(
            float(np.dot(b, b)) for b in coeffs.details[:3]
        )
        assert coarse / coeffs.energy() > 0.99

    def test_white_noise_energy_spread(self):
        noise = RNG.normal(size=256)
        coeffs = wavedec(noise, "db4")
        finest = float(np.dot(coeffs.details[-1], coeffs.details[-1]))
        # The finest band holds half the coefficients and therefore about
        # half the energy of white noise.
        assert 0.3 < finest / coeffs.energy() < 0.7

    @pytest.mark.parametrize("p", [7, 10])
    def test_high_order_filters_still_orthonormal(self, p):
        daubechies(p).check_orthonormal(tol=1e-6)

    def test_constant_signal_is_pure_scaling(self):
        x = np.full(64, 3.0)
        coeffs = wavedec(x, "db3")
        assert float(np.max(np.abs(np.concatenate(coeffs.details)))) < 1e-9
        assert coeffs.approx[0] == pytest.approx(3.0 * np.sqrt(64) /
                                                 np.sqrt(len(coeffs.approx)))


class TestLazyTransformInvariants:
    def test_complement_ranges_sum_to_full(self):
        """W(q_[0,k]) + W(q_[k+1,n-1]) == W(q_[0,n-1]) — linearity of the
        lazy translation."""
        n = 128
        k = 37
        full = lazy_range_query_transform([1.0], 0, n - 1, n, "db2")
        left = lazy_range_query_transform([1.0], 0, k, n, "db2")
        right = lazy_range_query_transform([1.0], k + 1, n - 1, n, "db2")
        combined = np.zeros(n)
        for entries in (left.entries, right.entries):
            for idx, val in entries.items():
                combined[idx] += val
        np.testing.assert_allclose(combined, full.to_dense(), atol=1e-8)

    def test_scaled_measure_scales_transform(self):
        n = 64
        base = lazy_range_query_transform([1.0], 5, 50, n, "db2")
        scaled = lazy_range_query_transform([2.5], 5, 50, n, "db2")
        np.testing.assert_allclose(
            scaled.to_dense(), 2.5 * base.to_dense(), atol=1e-9
        )

    @settings(max_examples=15, deadline=None)
    @given(order=st.integers(1, 4), lo=st.integers(0, 60))
    def test_sparsity_bounded_by_filter_width(self, order, lo):
        n = 2**12
        hi = min(n - 1, lo + 1000)
        sparse = lazy_range_query_transform(
            [1.0], lo, hi, n, f"db{order}"
        )
        filt = get_filter(f"db{order}")
        levels = max_levels(n, filt)
        # Per level: O(filter width) boundary coefficients per endpoint
        # plus wrap effects; a generous linear-in-(L * levels) cap.
        assert len(sparse) <= 6 * filt.length * levels + 2 * filt.length
