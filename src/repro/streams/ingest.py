"""Hundred-scale live ingestion: sessions, group commits, back-pressure.

§1.2's motivating deployments are not one glove: they are classrooms
and tele-immersion floors with *hundreds* of concurrent sensor-rich
sessions feeding one frequency cube.  This module is that tier, built
on the two mechanisms underneath it:

* every commit is a **vectorized batch append**
  (:class:`~repro.query.ingest.BatchInserter`), so N queued samples
  cost one coalesced read and one group-commit write per touched-block
  union, not N read-modify-writes;
* overload **degrades fidelity instead of dropping data**: a
  :class:`BandwidthCoordinator` watches the shared commit queue and,
  under sustained pressure, caps every registered sampler's recording
  rate (:meth:`StreamingAdaptiveSampler.set_max_rate_hz
  <repro.acquisition.streaming.StreamingAdaptiveSampler.set_max_rate_hz>`)
  — the paper's "level of activity" knob, pulled globally — then
  restores the rates step by step once the queue drains.

The flow: each :class:`IngestSession` runs its own causal sampler,
maps recorded samples to cube points, and submits them to the
service's bounded commit queue (``put`` blocks when full — back-
pressure reaches the producer, nothing is silently discarded).  One
committer thread drains the queue into group commits of up to
``commit_batch`` points.  Write-fault resilience belongs to the device
stack (a retry policy in the engine's
:class:`~repro.storage.device.StorageSpec` re-drives idempotent block
overwrites); a commit that still fails is kept, with its points, in
:attr:`IngestService.failed_batches` — never double-applied, never
silently dropped.

Metrics (the ``ingest.*`` family in DESIGN.md's catalogue):
``ingest.sessions`` / ``ingest.queue_depth`` / ``ingest.rate_scale``
gauges, ``ingest.commits`` / ``ingest.committed_points`` /
``ingest.commit_failures`` / ``ingest.degraded_rate_seconds``
counters, and the ``ingest.commit_batch_size`` histogram.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.core.errors import StreamError
from repro.lint.lockwatch import watched_lock
from repro.obs import DEFAULT_COUNT_BUCKETS
from repro.obs import counter as obs_counter
from repro.obs import gauge as obs_gauge
from repro.obs import histogram as obs_histogram
from repro.obs import span
from repro.query.ingest import BatchInserter

__all__ = ["BandwidthCoordinator", "IngestService", "IngestSession"]


@dataclass
class BandwidthCoordinator:
    """Global degrade-don't-drop controller over every live sampler.

    The committer loop reports queue fullness through :meth:`observe`.
    Fullness above :attr:`high_watermark` for :attr:`sustain_ticks`
    consecutive observations means the consumer is persistently behind
    the producers, so the coordinator multiplies its rate scale by
    :attr:`degrade_factor` (never below :attr:`min_scale`) and caps
    every registered sampler at ``scale * sampler.rate_hz``.  Fullness
    below :attr:`low_watermark` undoes one degradation step per
    observation; at scale 1.0 the caps are lifted entirely and
    activity-driven rates return.

    Time spent at any degraded scale accumulates into the
    ``ingest.degraded_rate_seconds`` counter — the acceptance signal
    that overload was absorbed by fidelity, not by data loss.

    Attributes:
        high_watermark: Queue-fullness fraction that counts as pressure.
        low_watermark: Fullness below which rates step back up.
        sustain_ticks: Consecutive pressured observations before the
            first degradation (one spike must not halve every stream).
        degrade_factor: Per-step rate multiplier in ``(0, 1)``.
        min_scale: Floor on the cumulative scale (degrade, don't mute).
    """

    high_watermark: float = 0.75
    low_watermark: float = 0.25
    sustain_ticks: int = 3
    degrade_factor: float = 0.5
    min_scale: float = 0.125
    #: Current cumulative rate scale in ``[min_scale, 1.0]``.
    scale: float = field(default=1.0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.low_watermark < self.high_watermark <= 1.0:
            raise StreamError(
                f"watermarks must satisfy 0 <= low < high <= 1, got "
                f"low={self.low_watermark} high={self.high_watermark}"
            )
        if not 0.0 < self.degrade_factor < 1.0:
            raise StreamError(
                f"degrade_factor must be in (0, 1), got "
                f"{self.degrade_factor}"
            )
        if not 0.0 < self.min_scale <= 1.0:
            raise StreamError(
                f"min_scale must be in (0, 1], got {self.min_scale}"
            )
        if self.sustain_ticks < 1:
            raise StreamError(
                f"sustain_ticks must be >= 1, got {self.sustain_ticks}"
            )
        self._lock = watched_lock("streams.coordinator")
        self._samplers: list = []
        self._pressured = 0
        self._degraded_since: float | None = None

    def register(self, sampler) -> None:
        """Put a sampler under coordination (applies the current cap)."""
        with self._lock:
            self._samplers.append(sampler)
            scale = self.scale
        if scale < 1.0:
            sampler.set_max_rate_hz(scale * sampler.rate_hz)

    def unregister(self, sampler) -> None:
        """Release a sampler (its cap is lifted on the way out)."""
        with self._lock:
            if sampler in self._samplers:
                self._samplers.remove(sampler)
        sampler.set_max_rate_hz(None)

    def _apply(self, scale: float, samplers: list) -> None:
        obs_gauge("ingest.rate_scale").set(scale)
        for sampler in samplers:
            sampler.set_max_rate_hz(
                None if scale >= 1.0 else scale * sampler.rate_hz
            )

    def _credit_degraded_time(self, now: float) -> None:
        # Called under the lock.  Accrues wall time spent degraded.
        if self._degraded_since is not None:
            obs_counter("ingest.degraded_rate_seconds").inc(
                now - self._degraded_since
            )
            self._degraded_since = now

    def observe(self, fullness: float) -> float:
        """Feed one queue-fullness reading; returns the current scale.

        Args:
            fullness: Commit-queue occupancy as a fraction of capacity.
        """
        now = time.monotonic()
        with self._lock:
            self._credit_degraded_time(now)
            if fullness >= self.high_watermark:
                self._pressured += 1
                if (
                    self._pressured >= self.sustain_ticks
                    and self.scale > self.min_scale
                ):
                    self.scale = max(
                        self.min_scale, self.scale * self.degrade_factor
                    )
                    self._pressured = 0
                    if self._degraded_since is None:
                        self._degraded_since = now
                    obs_counter("ingest.degradations").inc()
                    self._apply(self.scale, list(self._samplers))
            elif fullness <= self.low_watermark:
                self._pressured = 0
                if self.scale < 1.0:
                    self.scale = min(1.0, self.scale / self.degrade_factor)
                    if self.scale >= 1.0:
                        self._degraded_since = None
                    obs_counter("ingest.restorations").inc()
                    self._apply(self.scale, list(self._samplers))
            else:
                self._pressured = 0
            return self.scale

    @property
    def degraded(self) -> bool:
        """Whether any rate cap is currently in force."""
        with self._lock:
            return self.scale < 1.0


class IngestSession:
    """One live acquisition session feeding the shared ingest service.

    Ticks its own causal sampler, maps every recorded
    :class:`~repro.streams.sample.Sample` to a cube point, and submits
    the points to the service's commit queue (blocking there under
    back-pressure, which is how pressure reaches this producer).

    Args:
        service: The owning :class:`IngestService`.
        session_id: Stable identifier (used in errors and stats).
        sampler: A causal sampler with ``push(values) -> list[Sample]``
            (e.g. :class:`~repro.acquisition.streaming.StreamingAdaptiveSampler`).
        to_point: Maps one recorded sample to a cube point tuple.
        weight_of: Optional map from sample to insert weight
            (default 1.0 per recorded sample).
    """

    def __init__(
        self, service: "IngestService", session_id: str, sampler,
        to_point, weight_of=None,
    ) -> None:
        self.service = service
        self.session_id = session_id
        self.sampler = sampler
        self._to_point = to_point
        self._weight_of = weight_of
        self.submitted = 0
        self.closed = False

    def push(self, values) -> int:
        """Feed one device tick; returns how many points were enqueued."""
        if self.closed:
            raise StreamError(
                f"session {self.session_id!r} is closed"
            )
        samples = self.sampler.push(values)
        points = [self._to_point(sample) for sample in samples]
        weights = [
            1.0 if self._weight_of is None else self._weight_of(sample)
            for sample in samples
        ]
        # Record before submitting: the log captures what the sampler
        # decided (including the current rate cap), independent of how
        # long the bounded queue back-pressures the submits below.
        recorder = self.service.recorder
        if recorder is not None:
            recorder.on_push(
                self.session_id, self.sampler, samples, points, weights
            )
        for point, weight in zip(points, weights):
            self.service.submit(point, weight)
        self.submitted += len(samples)
        return len(samples)

    def close(self) -> None:
        """Detach from the service (idempotent)."""
        if not self.closed:
            self.closed = True
            self.service._release(self)


class IngestService:
    """Shared multi-session ingest front end over one ProPolyne engine.

    Hundreds of :class:`IngestSession` producers feed one bounded
    commit queue; a single committer thread drains it into vectorized
    group commits (:class:`~repro.query.ingest.BatchInserter`), and a
    :class:`BandwidthCoordinator` turns sustained queue pressure into
    global sampler-rate caps instead of sample loss.

    Args:
        engine: The target :class:`~repro.query.propolyne.ProPolyneEngine`.
        queue_capacity: Commit-queue bound in points; ``submit`` blocks
            when full (back-pressure, not drops).
        commit_batch: Maximum points folded into one group commit.
        coordinator: Optional :class:`BandwidthCoordinator`; ``None``
            disables adaptation (queue pressure then only blocks).
        poll_seconds: Committer wait for the first point of a batch.
        recorder: Optional
            :class:`~repro.streams.replay.SessionRecorder`; when set,
            every session's points, weights, timestamps and sampler
            rate changes are logged into a replayable
            :class:`~repro.streams.replay.SessionRecord`.
    """

    def __init__(
        self, engine, queue_capacity: int = 4096, commit_batch: int = 256,
        coordinator: BandwidthCoordinator | None = None,
        poll_seconds: float = 0.02,
        recorder=None,
    ) -> None:
        if queue_capacity < 1:
            raise StreamError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if commit_batch < 1:
            raise StreamError(
                f"commit_batch must be >= 1, got {commit_batch}"
            )
        self.engine = engine
        self.coordinator = coordinator
        self.recorder = recorder
        self.commit_batch = commit_batch
        self.poll_seconds = poll_seconds
        self.queue_capacity = queue_capacity
        self._queue: queue.Queue = queue.Queue(maxsize=queue_capacity)
        self._inserter = BatchInserter(engine)
        self._sessions: dict[str, IngestSession] = {}
        self._lock = watched_lock("streams.ingest")
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Commits the device stack could not complete even after its
        #: own retries, kept with their points: inspectable, re-playable
        #: by an operator, never double-applied or silently dropped.
        self.failed_batches: list[tuple[list, list]] = []
        self.committed_points = 0
        self.commits = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "IngestService":
        """Launch the committer thread (idempotent)."""
        with self._lock:
            if self._thread is None:
                self._stop.clear()
                self._thread = threading.Thread(
                    target=self._run, name="ingest-committer", daemon=True
                )
                self._thread.start()
        return self

    def stop(self) -> None:
        """Drain the queue, commit everything pending, stop the thread."""
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join()

    def __enter__(self) -> "IngestService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- producer side -----------------------------------------------------

    def open_session(
        self, session_id: str, sampler, to_point, weight_of=None
    ) -> IngestSession:
        """Register one producer session (its sampler joins the
        coordinator's control group).

        Args:
            session_id: Unique session identifier.
            sampler: Causal sampler with ``push``/``rate_hz``/
                ``set_max_rate_hz``.
            to_point: Sample-to-cube-point mapping.
            weight_of: Optional per-sample insert weight.
        """
        session = IngestSession(
            self, session_id, sampler, to_point, weight_of
        )
        with self._lock:
            if session_id in self._sessions:
                raise StreamError(
                    f"session {session_id!r} already open"
                )
            self._sessions[session_id] = session
            n = len(self._sessions)
        if self.coordinator is not None:
            self.coordinator.register(sampler)
        if self.recorder is not None:
            # The record's snapshot anchor: the engine's storage epoch
            # right now, before this session appends anything.
            self.recorder.begin(
                session_id, sampler,
                start_epoch=getattr(self.engine, "epoch", 0),
            )
        obs_gauge("ingest.sessions").set(n)
        return session

    def _release(self, session: IngestSession) -> None:
        with self._lock:
            self._sessions.pop(session.session_id, None)
            n = len(self._sessions)
        if self.coordinator is not None:
            self.coordinator.unregister(session.sampler)
        if self.recorder is not None:
            self.recorder.end(session.session_id)
        obs_gauge("ingest.sessions").set(n)

    @property
    def sessions(self) -> int:
        """Currently open producer sessions."""
        with self._lock:
            return len(self._sessions)

    def submit(self, point, weight: float = 1.0) -> None:
        """Enqueue one point for commit; blocks when the queue is full.

        Blocking is the back-pressure contract: a producer that outruns
        the committer waits (and, with a coordinator, gets its rate
        capped) — its samples are never discarded.
        """
        self._queue.put((point, weight))
        obs_gauge("ingest.queue_depth").set(self._queue.qsize())

    def flush(self) -> None:
        """Block until every point enqueued so far has been committed."""
        self._queue.join()

    @property
    def queue_depth(self) -> int:
        """Points currently waiting in the commit queue."""
        return self._queue.qsize()

    # -- committer side ----------------------------------------------------

    def _drain_batch(self) -> tuple[list, list]:
        """Up to ``commit_batch`` queued points (first get may block)."""
        points: list = []
        weights: list = []
        try:
            point, weight = self._queue.get(timeout=self.poll_seconds)
        except queue.Empty:
            return points, weights
        points.append(point)
        weights.append(weight)
        while len(points) < self.commit_batch:
            try:
                point, weight = self._queue.get_nowait()
            except queue.Empty:
                break
            points.append(point)
            weights.append(weight)
        return points, weights

    def _commit(self, points: list, weights: list) -> None:
        with span("ingest.commit"):
            obs_histogram(
                "ingest.commit_batch_size", DEFAULT_COUNT_BUCKETS
            ).observe(len(points))
            try:
                self._inserter.insert_batch(points, weights)
            except Exception:
                # The device stack already retried (its StorageSpec
                # owns resilience); a commit failing past that is kept,
                # not re-driven: insert_batch is a read-modify-write,
                # so re-applying after a partial write would double-
                # count.  Nothing is silently lost either way.
                obs_counter("ingest.commit_failures").inc()
                self.failed_batches.append((points, weights))
            else:
                obs_counter("ingest.commits").inc()
                obs_counter("ingest.committed_points").inc(len(points))
                self.commits += 1
                self.committed_points += len(points)
            finally:
                for _ in points:
                    self._queue.task_done()

    def _run(self) -> None:
        while True:
            points, weights = self._drain_batch()
            if points:
                self._commit(points, weights)
            obs_gauge("ingest.queue_depth").set(self._queue.qsize())
            if self.coordinator is not None:
                self.coordinator.observe(
                    self._queue.qsize() / self.queue_capacity
                )
            if self._stop.is_set() and self._queue.empty():
                return
