"""Ablation A4 — block caching and locality of reference.

§3.2.1's argument for packing dependent coefficients together is that
repeated query workloads re-touch the same blocks.  This ablation runs a
drill-down-style workload (overlapping ranges around a hot region) against
the same cube with and without a caching device layer, under both the
tiling and
random allocation — locality only pays when the allocation creates it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.query.rangesum import RangeSumQuery
from repro.sensors.atmosphere import atmospheric_cube
from repro.storage.allocation import (
    TensorAllocation,
    random_allocation,
    subtree_tiling_allocation,
)
from repro.storage.blockstore import TensorBlockStore
from repro.query.propolyne import translate_query
from repro.wavelets.dwt import max_levels
from repro.wavelets.filters import get_filter
from repro.wavelets.tensor import tensor_wavedec

from conftest import format_table


def build_store(coeffs, allocation_factory, pool):
    n1, n2 = coeffs.shape
    alloc = TensorAllocation(
        axes=(allocation_factory(n1, 7), allocation_factory(n2, 7))
    )
    return TensorBlockStore(coeffs, alloc, pool_capacity=pool)


def run_workload(store, queries, shape, levels, filt):
    before = store.io_snapshot()
    for query in queries:
        entries = translate_query(query, shape, shape, levels, filt)
        store.fetch(list(entries))
    return store.io_since(before).reads


def run_ablation():
    cube = atmospheric_cube((64, 64), np.random.default_rng(41))
    filt = get_filter("db2")
    levels = (max_levels(64, filt), max_levels(64, filt))
    coeffs = tensor_wavedec(cube, filt, levels=levels)

    rng = np.random.default_rng(42)
    queries = []
    for _ in range(30):  # drill-downs clustered on one hot region
        lo1 = int(rng.integers(8, 16))
        lo2 = int(rng.integers(24, 32))
        queries.append(
            RangeSumQuery.count(
                [(lo1, lo1 + int(rng.integers(8, 24))),
                 (lo2, lo2 + int(rng.integers(8, 24)))]
            )
        )

    rows = []
    reads = {}
    for alloc_name, factory in (
        ("tiling", subtree_tiling_allocation),
        ("random", lambda n, b: random_allocation(n, b, np.random.default_rng(7))),
    ):
        for pool in (None, 64):
            store = build_store(coeffs, factory, pool)
            count = run_workload(store, queries, (64, 64), levels, filt)
            reads[(alloc_name, pool is not None)] = count
            rows.append(
                [alloc_name, "yes" if pool else "no", count]
            )
    return reads, rows


def test_a4_pool_and_locality(emit, benchmark):
    reads, rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        "A4_bufferpool_locality",
        format_table(
            ["allocation", "buffer pool", "device reads (30 queries)"], rows
        ),
    )
    # Under the tiling allocation, the pool turns the repeated workload
    # into a working set that fits: device reads collapse.
    assert reads[("tiling", True)] < reads[("tiling", False)] / 5
    # Under random placement the same pool gains little or nothing — the
    # workload touches more distinct blocks than the pool holds, so it
    # thrashes.  Locality must be *created* by the allocation (§3.2.1).
    assert reads[("random", True)] <= reads[("random", False)]
    assert reads[("tiling", True)] < reads[("random", True)] / 5
