"""Tests for the continuous-data-stream substrate (repro.streams)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import StreamError
from repro.streams import (
    ArraySource,
    CallbackSource,
    DoubleBuffer,
    Frame,
    Sample,
    SlidingWindow,
    concat_sources,
    demultiplex,
    frames_to_matrix,
    multiplex,
    sliding_windows,
    tumbling_windows,
)


RNG = np.random.default_rng(5)


class TestSampleAndFrame:
    def test_sample_validation(self):
        with pytest.raises(StreamError):
            Sample(timestamp=-1.0, sensor_id=1, value=0.0)
        with pytest.raises(StreamError):
            Sample(timestamp=0.0, sensor_id=-1, value=0.0)

    def test_frame_from_array(self):
        frame = Frame.from_array(1.5, np.array([1.0, 2.0, 3.0]))
        assert frame.width == 3
        np.testing.assert_allclose(frame.as_array(), [1.0, 2.0, 3.0])

    def test_frame_rejects_matrix(self):
        with pytest.raises(StreamError):
            Frame.from_array(0.0, np.ones((2, 2)))

    def test_frames_to_matrix(self):
        frames = [Frame.from_array(i * 0.1, np.full(4, i)) for i in range(5)]
        matrix = frames_to_matrix(frames)
        assert matrix.shape == (5, 4)
        np.testing.assert_allclose(matrix[3], np.full(4, 3.0))

    def test_frames_to_matrix_empty(self):
        with pytest.raises(StreamError):
            frames_to_matrix([])

    def test_frames_to_matrix_ragged(self):
        frames = [
            Frame.from_array(0.0, np.zeros(3)),
            Frame.from_array(0.1, np.zeros(4)),
        ]
        with pytest.raises(StreamError):
            frames_to_matrix(frames)


class TestSources:
    def test_array_source_timestamps(self):
        src = ArraySource(RNG.normal(size=(10, 3)), rate_hz=100.0)
        frames = list(src)
        assert len(frames) == 10
        assert frames[3].timestamp == pytest.approx(0.03)

    def test_array_source_single_pass(self):
        src = ArraySource(np.zeros((5, 2)), rate_hz=10.0)
        list(src)
        with pytest.raises(StreamError):
            list(src)

    def test_array_source_1d_promotion(self):
        src = ArraySource(np.arange(4.0), rate_hz=1.0)
        assert src.width == 1

    def test_callback_source(self):
        src = CallbackSource(
            lambda i: np.array([float(i)]) if i < 3 else None,
            width=1,
            rate_hz=10.0,
        )
        values = [f.values[0] for f in src]
        assert values == [0.0, 1.0, 2.0]

    def test_callback_source_bad_shape(self):
        src = CallbackSource(lambda i: np.zeros(2), width=3, rate_hz=10.0)
        with pytest.raises(StreamError):
            list(src)

    def test_concat_sources_monotone_time(self):
        a = ArraySource(np.zeros((4, 2)), rate_hz=10.0)
        b = ArraySource(np.ones((4, 2)), rate_hz=10.0)
        frames = list(concat_sources([a, b]))
        times = [f.timestamp for f in frames]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_concat_width_mismatch(self):
        a = ArraySource(np.zeros((2, 2)), rate_hz=10.0)
        b = ArraySource(np.zeros((2, 3)), rate_hz=10.0)
        with pytest.raises(StreamError):
            list(concat_sources([a, b]))

    def test_invalid_rate(self):
        with pytest.raises(StreamError):
            ArraySource(np.zeros((2, 2)), rate_hz=0.0)


class TestWindows:
    def test_sliding_window_eviction(self):
        window = SlidingWindow(capacity=3)
        for i in range(5):
            window.push(Frame.from_array(i * 0.1, np.array([float(i)])))
        assert len(window) == 3
        np.testing.assert_allclose(window.matrix().ravel(), [2.0, 3.0, 4.0])

    def test_sliding_window_span(self):
        window = SlidingWindow(capacity=4)
        assert window.span == 0.0
        for i in range(4):
            window.push(Frame.from_array(i * 0.5, np.array([0.0])))
        assert window.span == pytest.approx(1.5)

    def test_sliding_window_clear(self):
        window = SlidingWindow(capacity=2)
        window.push(Frame.from_array(0.0, np.array([1.0])))
        window.clear()
        assert len(window) == 0

    def test_invalid_capacity(self):
        with pytest.raises(StreamError):
            SlidingWindow(capacity=0)

    def test_sliding_windows_iterator(self):
        frames = [Frame.from_array(i * 0.1, np.array([float(i)])) for i in range(6)]
        wins = list(sliding_windows(frames, size=3, step=2))
        firsts = [w[0].values[0] for w in wins]
        assert firsts == [0.0, 2.0]  # windows at frames 0-2 and 2-4

    def test_sliding_windows_step_one(self):
        frames = [Frame.from_array(i * 0.1, np.array([float(i)])) for i in range(5)]
        wins = list(sliding_windows(frames, size=2, step=1))
        assert len(wins) == 4

    def test_tumbling_windows(self):
        frames = [Frame.from_array(i * 0.1, np.array([float(i)])) for i in range(7)]
        wins = list(tumbling_windows(frames, size=3))
        assert [len(w) for w in wins] == [3, 3, 1]
        wins = list(tumbling_windows(iter(frames), size=3, drop_last=True))
        assert [len(w) for w in wins] == [3, 3]

    def test_window_validation(self):
        with pytest.raises(StreamError):
            list(sliding_windows([], size=0))
        with pytest.raises(StreamError):
            list(tumbling_windows([], size=-1))


class TestMultiplex:
    def test_zero_order_hold(self):
        samples = [
            Sample(0.00, 1, 10.0),
            Sample(0.00, 2, 20.0),
            Sample(0.10, 1, 11.0),
            Sample(0.20, 1, 12.0),
            Sample(0.20, 2, 22.0),
        ]
        frames = list(multiplex(samples, [1, 2], rate_hz=10.0))
        assert len(frames) == 3
        np.testing.assert_allclose(frames[0].values, [10.0, 20.0])
        np.testing.assert_allclose(frames[1].values, [11.0, 20.0])  # held
        np.testing.assert_allclose(frames[2].values, [12.0, 22.0])

    def test_out_of_order_rejected(self):
        samples = [Sample(1.0, 1, 0.0), Sample(0.5, 1, 0.0)]
        with pytest.raises(StreamError):
            list(multiplex(samples, [1], rate_hz=10.0))

    def test_unknown_sensors_skipped(self):
        samples = [Sample(0.0, 1, 5.0), Sample(0.0, 9, 99.0)]
        frames = list(multiplex(samples, [1], rate_hz=10.0))
        assert frames[0].values == (5.0,)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(StreamError):
            list(multiplex([], [1, 1], rate_hz=10.0))

    def test_demultiplex_roundtrip(self):
        frames = [Frame.from_array(i * 0.1, np.array([i, -i], float)) for i in range(3)]
        samples = list(demultiplex(frames, [7, 8]))
        assert len(samples) == 6
        assert samples[0].sensor_id == 7
        assert samples[1] == Sample(0.0, 8, -0.0)

    def test_demultiplex_width_mismatch(self):
        frames = [Frame.from_array(0.0, np.zeros(3))]
        with pytest.raises(StreamError):
            list(demultiplex(frames, [1, 2]))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_multiplex_preserves_final_values(self, seed):
        rng = np.random.default_rng(seed)
        samples = sorted(
            (
                Sample(float(ts), int(sid), float(rng.normal()))
                for ts, sid in zip(
                    rng.uniform(0, 1, size=20), rng.integers(1, 4, size=20)
                )
            ),
            key=lambda s: s.timestamp,
        )
        frames = list(multiplex(samples, [1, 2, 3], rate_hz=50.0))
        if not frames:
            return
        last = {}
        final_tick = int(np.floor(samples[-1].timestamp / 0.02))
        for s in samples:
            if int(np.floor(s.timestamp / 0.02)) <= final_tick:
                last[s.sensor_id] = s.value
        for col, sid in enumerate([1, 2, 3]):
            if sid in last:
                assert frames[-1].values[col] == pytest.approx(last[sid])


class TestDoubleBuffer:
    def _frames(self, n):
        return [Frame.from_array(i * 0.01, np.array([float(i)])) for i in range(n)]

    def test_fast_drain_loses_nothing(self):
        buf = DoubleBuffer(capacity=8, drain_rate=2.0)
        stats = buf.record(self._frames(100))
        assert stats.dropped == 0
        assert stats.stored == 100
        assert len(buf.stored_frames) == 100

    def test_slow_drain_drops_frames(self):
        buf = DoubleBuffer(capacity=4, drain_rate=0.3)
        stats = buf.record(self._frames(200))
        assert stats.dropped > 0
        assert stats.stored + stats.dropped == stats.produced == 200

    def test_preserves_order(self):
        buf = DoubleBuffer(capacity=8, drain_rate=1.5)
        buf.record(self._frames(50))
        values = [f.values[0] for f in buf.stored_frames]
        assert values == sorted(values)

    def test_loss_rate(self):
        stats = DoubleBuffer(capacity=4, drain_rate=10.0).record(self._frames(40))
        assert stats.loss_rate == 0.0

    def test_validation(self):
        with pytest.raises(StreamError):
            DoubleBuffer(capacity=0)
        with pytest.raises(StreamError):
            DoubleBuffer(capacity=4, drain_rate=0.0)
