"""Metric- and schema-catalogue drift checker.

DESIGN.md and docs/OPERATIONS.md carry the metric-name catalogue —
"the single source of truth for dashboards and assertions" — and
docs/REPLAY.md specifies the ``repro.*/v1`` wire schemas.  Until PR 10
the catalogues were prose: nothing failed when a new ``counter(...)``
site shipped undocumented, or when a doc row outlived the series it
described.  The provenance line of work this repo follows (Bernstetter
et al., PAPERS.md) treats observable names as API: they must be
documented and stable.

``deep-metric-drift`` extracts every registration site from the
project model (``counter(``/``gauge(``/``histogram(`` plus
``span``/``timer`` sites, which register ``<name>.seconds``) and diffs
both directions:

* **undocumented** — a registered name no catalogue mentions
  (anchored at the registration site in code);
* **stale** — a catalogue row whose series no code site can produce
  (anchored at the doc file and line).

Dynamic name parts (f-strings, ``prefix + ".reads"``) become ``<>``
wildcards; catalogue placeholders like ``aggregates.<op>.seconds``
match them.  Relative table rows (```storage.pool.hits` / `misses```)
are expanded against the previous full name.

``deep-schema-drift`` does the same for ``repro.*/vN`` schema strings
between the configured schema roots and the docs.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.lint.analysis.model import SCHEMA_RE, ProjectModel
from repro.lint.engine import Finding

__all__ = ["MetricDriftAnalyzer", "SchemaDriftAnalyzer"]

#: A documented metric token: dotted lowercase segments, ``<...>``
#: placeholders allowed.
_DOC_TOKEN_RE = re.compile(
    r"`(\.?[a-z0-9_<>]+(?:\.[a-z0-9_<>]+)*)`"
)

_METRIC_KINDS = ("counter", "gauge", "histogram")


def _pattern_to_regex(name: str) -> re.Pattern:
    """``a.<op>.seconds`` / ``<>.reads`` -> anchored regex."""
    parts = re.split(r"<[^>]*>", name)
    return re.compile(
        "(?s)^" + "[a-z0-9_.]+".join(re.escape(p) for p in parts) + "$"
    )


def _placeholder_text(name: str) -> str:
    """A representative literal for a pattern (``<op>`` -> ``zz``)."""
    return re.sub(r"<[^>]*>", "zz", name)


class _Catalogue:
    """The documented metric names, parsed from the markdown docs."""

    def __init__(self) -> None:
        #: every name mentioned anywhere in the docs (the
        #: "documented" universe for the undocumented check)
        self.mentioned: set[str] = set()
        #: names from catalogue table rows, with their doc location
        #: (the universe the staleness check walks)
        self.table_rows: list[tuple[str, str, int]] = []

    def add_doc(self, rel_path: str, text: str) -> None:
        for lineno, line in enumerate(text.splitlines(), start=1):
            names = self._line_names(line)
            self.mentioned.update(names)
            if self._is_catalogue_row(line):
                for name in names:
                    self.table_rows.append((name, rel_path, lineno))

    @staticmethod
    def _is_catalogue_row(line: str) -> bool:
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) < 2:
            return False
        kind = cells[1].split("/")[0].strip().lower()
        return kind in _METRIC_KINDS

    @staticmethod
    def _line_names(line: str) -> list[str]:
        """Backticked metric names on one line, continuations expanded.

        ``| `storage.pool.hits` / `misses` | counter |`` documents both
        ``storage.pool.hits`` and ``storage.pool.misses``: a token with
        fewer segments than the previous full name, separated from it
        by ``/``, replaces the previous name's trailing segments.
        """
        names: list[str] = []
        prev: str | None = None
        last_end = None
        for match in _DOC_TOKEN_RE.finditer(line):
            token = match.group(1)
            gap = line[last_end:match.start()] if last_end else ""
            last_end = match.end()
            relative = token.startswith(".")
            token = token.lstrip(".")
            segments = token.split(".")
            prev_segments = prev.split(".") if prev else []
            # `scan.shared` after `query.service.scan.fetches` splices
            # (its head aligns with prev at the splice point); a
            # shorter *full* name like `query.inserts` after
            # `query.progressive.blocks` does not — its head matches
            # no spliceable position, so it stands alone.
            aligned = (
                len(segments) < len(prev_segments)
                and (len(segments) == 1
                     or segments[0]
                     == prev_segments[len(prev_segments) - len(segments)])
            )
            is_continuation = (
                prev is not None
                and gap.strip() == "/"
                and (relative or aligned)
            )
            if is_continuation:
                base = prev.split(".")
                name = ".".join(base[: len(base) - len(segments)]
                                + segments)
                names.append(name)
                continue
            if "." not in token:
                prev = None
                continue
            names.append(token)
            prev = token
        return names


class MetricDriftAnalyzer:
    """Two-way diff of metric registrations vs. the doc catalogues."""

    rule_id = "deep-metric-drift"
    severity = "error"
    description = (
        "every registered metric name is documented in the catalogue "
        "docs, and every catalogue row names a series code can produce"
    )

    def __init__(self, docs) -> None:
        self.docs = tuple(docs)

    def analyze(self, project: ProjectModel) -> list[Finding]:
        """Yield undocumented-registration and stale-row findings."""
        catalogue = _Catalogue()
        root = Path(project.root)
        for rel in self.docs:
            doc = root / rel
            if doc.is_file():
                catalogue.add_doc(Path(rel).as_posix(), doc.read_text())
        doc_literals = {
            n for n in catalogue.mentioned if "<" not in n
        }
        doc_patterns = {
            n: _pattern_to_regex(n)
            for n in catalogue.mentioned if "<" in n
        }
        code_literals: dict[str, tuple[str, int]] = {}
        code_patterns: dict[str, tuple[str, int, re.Pattern]] = {}
        findings: list[Finding] = []
        for summary in project.modules():
            for site in summary.metrics:
                if site.is_pattern:
                    if site.name.strip("<>") == "":
                        continue  # fully dynamic: nothing to check
                    code_patterns.setdefault(
                        site.name,
                        (summary.path, site.line,
                         _pattern_to_regex(site.name)),
                    )
                else:
                    code_literals.setdefault(
                        site.name, (summary.path, site.line)
                    )

        def documented(name: str) -> bool:
            if name in doc_literals:
                return True
            return any(rx.match(name) for rx in doc_patterns.values())

        # Direction 1: every registration is documented.
        for name in sorted(code_literals):
            if not documented(name):
                path, line = code_literals[name]
                findings.append(self._finding(
                    path, line,
                    f"metric {name!r} is registered here but absent "
                    f"from the catalogues ({', '.join(self.docs)}); "
                    f"document it or drop the series",
                ))
        for name in sorted(code_patterns):
            path, line, rx = code_patterns[name]
            probe = _placeholder_text(name)
            ok = (
                any(rx.match(d) for d in doc_literals)
                or any(p.match(probe) or rx.match(_placeholder_text(d))
                       for d, p in doc_patterns.items())
            )
            if not ok:
                findings.append(self._finding(
                    path, line,
                    f"dynamic metric {name!r} matches no catalogue "
                    f"entry; document the family (use <...> for the "
                    f"dynamic part)",
                ))
        # Direction 2: every catalogue row is live.
        code_literal_set = set(code_literals)
        code_regexes = [rx for _, _, rx in code_patterns.values()]
        seen_rows: set[str] = set()
        for name, doc_path, line in catalogue.table_rows:
            if name in seen_rows:
                continue
            seen_rows.add(name)
            if "<" in name:
                rx = _pattern_to_regex(name)
                probe = _placeholder_text(name)
                live = (
                    any(rx.match(c) for c in code_literal_set)
                    or any(crx.match(probe) for crx in code_regexes)
                )
            else:
                live = (
                    name in code_literal_set
                    or any(crx.match(name) for crx in code_regexes)
                )
            if not live:
                findings.append(self._finding(
                    doc_path, line,
                    f"catalogue row documents {name!r} but no "
                    f"registration site can produce it; the row is "
                    f"stale (or the series was renamed)",
                ))
        return findings

    def _finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(
            file=path, line=line, rule_id=self.rule_id,
            severity=self.severity, message=message,
        )


class SchemaDriftAnalyzer:
    """Two-way diff of ``repro.*/vN`` schema strings vs. the docs."""

    rule_id = "deep-schema-drift"
    severity = "error"
    description = (
        "every repro.*/vN schema string in code is documented, and "
        "every documented schema exists in code"
    )

    def __init__(self, docs, schema_roots) -> None:
        self.docs = tuple(docs)
        self.schema_roots = tuple(schema_roots)

    def analyze(self, project: ProjectModel) -> list[Finding]:
        """Yield undocumented-schema and vanished-schema findings."""
        root = Path(project.root)
        code: dict[str, tuple[str, int]] = {}
        # The project model already carries schema strings for the
        # lint roots; extra schema roots (benchmarks) are scanned
        # textually — cheap, and they are not python-model material.
        for summary in project.modules():
            for schema, line in summary.schemas:
                code.setdefault(schema, (summary.path, line))
        for rel in self.schema_roots:
            base = root / rel
            files = (
                sorted(base.rglob("*.py")) if base.is_dir()
                else [base] if base.is_file() else []
            )
            for file in files:
                if "__pycache__" in file.parts:
                    continue
                rel_file = file.relative_to(root).as_posix()
                if rel_file in project.summaries:
                    continue
                for lineno, text in enumerate(
                    file.read_text().splitlines(), start=1
                ):
                    for match in SCHEMA_RE.finditer(text):
                        code.setdefault(match.group(0),
                                        (rel_file, lineno))
        docs: dict[str, tuple[str, int]] = {}
        for rel in self.docs:
            doc = root / rel
            if not doc.is_file():
                continue
            for lineno, text in enumerate(
                doc.read_text().splitlines(), start=1
            ):
                for match in SCHEMA_RE.finditer(text):
                    docs.setdefault(match.group(0),
                                    (Path(rel).as_posix(), lineno))
        findings: list[Finding] = []
        for schema in sorted(set(code) - set(docs)):
            path, line = code[schema]
            findings.append(Finding(
                file=path, line=line, rule_id=self.rule_id,
                severity=self.severity,
                message=(
                    f"schema {schema!r} appears in code but in none of "
                    f"the docs ({', '.join(self.docs)}); document the "
                    f"format"
                ),
            ))
        for schema in sorted(set(docs) - set(code)):
            path, line = docs[schema]
            findings.append(Finding(
                file=path, line=line, rule_id=self.rule_id,
                severity=self.severity,
                message=(
                    f"docs describe schema {schema!r} but nothing in "
                    f"the scanned roots produces it; the spec is stale"
                ),
            ))
        return findings
