"""Ablation A3 — filter and basis choice (§3.1.1 / §3.3.1).

Two axes of the "choose the transformation to suit the query engine"
decision:

1. *Vanishing moments*: more moments buy sparser transforms of polynomial
   queries (and smoother-data compression) at the price of longer filters
   (wider boundary effects, more work per level).  Reported: query
   coefficient counts per filter order for COUNT / SUM / SUM-of-squares.
2. *Wavelet vs adapted packet basis*: the packet best basis wins data
   compression on oscillatory signals and changes nothing on smooth ones
   (any orthonormal basis answers queries exactly either way).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.query.packet_engine import PacketBasisEngine
from repro.query.rangesum import RangeSumQuery
from repro.sensors.atmosphere import atmospheric_cube
from repro.wavelets.dwt import max_levels
from repro.wavelets.filters import get_filter
from repro.wavelets.lazy import lazy_range_query_transform

from conftest import format_table

N = 2**12


def run_moment_sweep():
    rows = []
    counts = {}
    for degree, label in ((0, "COUNT"), (1, "SUM(x)"), (2, "SUM(x^2)")):
        poly = [0.0] * degree + [1.0]
        row = [label]
        for order in (1, 2, 3, 4, 6):
            if order <= degree:
                row.append("-")  # too few moments: not sparse
                continue
            sparse = lazy_range_query_transform(
                poly, N // 7, 6 * N // 7, N, wavelet=f"db{order}"
            )
            counts[(degree, order)] = len(sparse)
            row.append(len(sparse))
        rows.append(row)
    return counts, rows


def test_a3_vanishing_moment_sweep(emit, benchmark):
    counts, rows = benchmark.pedantic(run_moment_sweep, rounds=1, iterations=1)
    emit(
        "A3a_filter_order_sweep",
        format_table(
            ["measure", "db1", "db2", "db3", "db4", "db6"], rows
        ),
    )
    # The minimal adequate filter is near-optimal; longer filters cost
    # more boundary coefficients, never fewer levels.
    assert counts[(0, 1)] <= counts[(0, 6)]
    assert counts[(1, 2)] <= counts[(1, 6)]
    # Every recorded count is polylogarithmic in N.
    assert all(c < 500 for c in counts.values())


def run_basis_comparison():
    t = np.arange(128)
    oscillatory = np.outer(
        np.sin(2 * np.pi * 30 * t / 128), np.sin(2 * np.pi * 30 * t / 128)
    ) + 0.05 * np.random.default_rng(31).normal(size=(128, 128))
    smooth = atmospheric_cube((128, 128), np.random.default_rng(32))

    depth = max_levels(128, get_filter("db4"))
    dwt_cover = ["a" * depth] + [
        "a" * k + "d" for k in range(depth - 1, -1, -1)
    ]
    rows = []
    errors = {}
    for name, cube in (("oscillatory", oscillatory), ("smooth", smooth)):
        adapted = PacketBasisEngine(cube, wavelet="db4")
        plain = PacketBasisEngine(
            cube, wavelet="db4", covers=[dwt_cover, dwt_cover]
        )
        budget = 256
        errors[(name, "adapted")] = adapted.compression_error(budget)
        errors[(name, "dwt")] = plain.compression_error(budget)
        rows.append(
            [name, f"{errors[(name, 'dwt')]:.4f}",
             f"{errors[(name, 'adapted')]:.4f}"]
        )
        # Exactness is basis-independent.
        q = RangeSumQuery.count([(10, 100), (20, 110)])
        assert adapted.evaluate_exact(q) == pytest.approx(
            plain.evaluate_exact(q), rel=1e-8
        )
    return errors, rows


def test_a3_packet_basis_adaptation(emit, benchmark):
    errors, rows = benchmark.pedantic(
        run_basis_comparison, rounds=1, iterations=1
    )
    emit(
        "A3b_basis_adaptation",
        format_table(
            ["dataset", "DWT top-256 rel.err", "best-basis top-256 rel.err"],
            rows,
        ),
    )
    # Packets win clearly on oscillatory data ...
    assert (
        errors[("oscillatory", "adapted")]
        < 0.7 * errors[("oscillatory", "dwt")]
    )
    # ... and essentially tie on smooth data (the cover is selected from
    # sample slices, so a sub-percent sampling wobble is possible).
    assert (
        errors[("smooth", "adapted")]
        <= errors[("smooth", "dwt")] * 1.02
    )
