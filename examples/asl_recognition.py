"""The ASL recognition application of §2.2 / §3.4, end to end.

Trains a 10-sign vocabulary from synthesized CyberGlove performances,
compares the four similarity measures on isolated-sign classification
(weighted SVD vs the Euclidean/DFT/DWT alternatives of §3.4.2), then runs
the real-time isolate-and-recognize pipeline over a continuous multi-sign
session.

Run:
    python examples/asl_recognition.py
"""

from __future__ import annotations

import numpy as np

from repro import AIMS
from repro.online.recognizer import RecognizerConfig, classify_instance
from repro.online.similarity import SIMILARITY_MEASURES
from repro.online.vocabulary import MotionVocabulary
from repro.sensors.asl import ASL_VOCABULARY, synthesize_session, synthesize_sign
from repro.sensors.noise import NoiseModel


def main() -> None:
    rng = np.random.default_rng(34)  # §3.4
    print(f"vocabulary: {[s.name for s in ASL_VOCABULARY]}")

    # ---- training -----------------------------------------------------------
    training = {
        spec.name: [synthesize_sign(spec, rng).frames for _ in range(5)]
        for spec in ASL_VOCABULARY
    }
    vocabulary = MotionVocabulary.from_instances(training)
    templates = {name: mats[0] for name, mats in training.items()}

    # ---- isolated-sign classification: measure shoot-out --------------------
    # Test instances carry heavy time warp, imprecise isolation boundaries
    # (onset jitter) and sensor noise: the regime where the paper argues
    # alignment-based measures break down and weighted SVD does not.
    print("\n== isolated-sign accuracy by similarity measure ==")
    hard_noise = NoiseModel(white_sigma=2.0)
    test_set = [
        (
            spec.name,
            synthesize_sign(
                spec, rng, noise=hard_noise,
                warp_range=(0.6, 1.6), onset_jitter=0.5,
            ).frames,
        )
        for spec in ASL_VOCABULARY
        for _ in range(8)
    ]
    for measure_name, measure in SIMILARITY_MEASURES.items():
        correct = sum(
            1
            for truth, inst in test_set
            if classify_instance(inst, vocabulary, measure, templates) == truth
        )
        print(f"  {measure_name:12s}: {correct / len(test_set):.1%}")

    # ---- streaming isolation + recognition ---------------------------------
    print("\n== real-time stream recognition ==")
    sequence = [ASL_VOCABULARY[i] for i in (5, 0, 9, 7, 6, 2)]
    frames, segments = synthesize_session(sequence, rng, gap_duration=0.8)
    print(f"stream: {frames.shape[0]} frames, "
          f"{len(segments)} signs to isolate")

    system = AIMS()
    system.train_vocabulary(training)
    recognizer = system.recognizer(
        rest_frames=frames[: segments[0].start],
        config=RecognizerConfig(window=50, compare_every=10,
                                declare_threshold=0.4, decline_steps=3),
    )
    detections = recognizer.process(frames)

    print(f"{'truth':8s} {'span':>14s}   {'detected':8s} {'span':>14s}")
    for i in range(max(len(segments), len(detections))):
        truth = segments[i] if i < len(segments) else None
        det = detections[i] if i < len(detections) else None
        left = (f"{truth.name:8s} [{truth.start:5d},{truth.end:5d}]"
                if truth else " " * 22)
        right = (f"{det.name:8s} [{det.start:5d},{det.end:5d}]"
                 if det else "")
        print(f"{left}   {right}")

    matched = sum(
        1
        for det in detections
        for seg in segments
        if det.name == seg.name and det.start < seg.end and seg.start < det.end
    )
    print(f"\ndetections overlapping a same-name ground-truth segment: "
          f"{matched}/{len(segments)}")


if __name__ == "__main__":
    main()
