"""Session recording and replay.

Reproducibility plumbing: simulated sessions (glove captures, ASL
streams, classroom tracker matrices) can be written to a compressed
``.npz`` bundle with their metadata and replayed later as the same frame
stream — the offline dataset format the benchmarks and examples can share
across runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.errors import StreamError
from repro.streams.source import ArraySource

__all__ = ["SessionBundle", "save_session", "load_session"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SessionBundle:
    """A recorded session plus its provenance."""

    name: str
    data: np.ndarray  # (frames, sensors)
    rate_hz: float
    metadata: dict

    @property
    def duration(self) -> float:
        """Session length in seconds."""
        return self.data.shape[0] / self.rate_hz

    def source(self) -> ArraySource:
        """Replay as a frame stream at the recorded rate."""
        return ArraySource(self.data, rate_hz=self.rate_hz)


def save_session(
    path: str | Path,
    name: str,
    data: np.ndarray,
    rate_hz: float,
    metadata: dict | None = None,
) -> Path:
    """Write a session bundle to ``path`` (``.npz``).

    Args:
        path: Destination file.
        name: Session identifier.
        data: ``(frames, sensors)`` matrix.
        rate_hz: Recording rate.
        metadata: JSON-serializable provenance (seeds, subject ids, ...).

    Returns:
        The written path.
    """
    matrix = np.asarray(data, dtype=float)
    if matrix.ndim != 2:
        raise StreamError(
            f"sessions are (frames, sensors) matrices, got ndim={matrix.ndim}"
        )
    if rate_hz <= 0:
        raise StreamError(f"rate must be positive, got {rate_hz}")
    meta = dict(metadata or {})
    try:
        header = json.dumps(
            {"version": _FORMAT_VERSION, "name": name, "rate_hz": rate_hz,
             "metadata": meta}
        )
    except TypeError as exc:
        raise StreamError(f"metadata is not JSON-serializable: {exc}") from exc
    out = Path(path)
    np.savez_compressed(out, header=np.frombuffer(header.encode(), np.uint8),
                        data=matrix)
    return out if out.suffix == ".npz" else out.with_suffix(out.suffix + ".npz")


def load_session(path: str | Path) -> SessionBundle:
    """Read a bundle written by :func:`save_session`."""
    target = Path(path)
    if not target.exists() and target.with_suffix(target.suffix + ".npz").exists():
        target = target.with_suffix(target.suffix + ".npz")
    if not target.exists():
        raise StreamError(f"no session bundle at {path}")
    with np.load(target) as archive:
        header = json.loads(bytes(archive["header"]).decode())
        data = archive["data"]
    if header.get("version") != _FORMAT_VERSION:
        raise StreamError(
            f"unsupported session format version {header.get('version')}"
        )
    return SessionBundle(
        name=header["name"],
        data=data,
        rate_hz=float(header["rate_hz"]),
        metadata=header["metadata"],
    )
