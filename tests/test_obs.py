"""Tests for the unified observability layer (repro.obs)."""

import json

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_COUNT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    current_span,
    registry_from_dict,
    registry_to_dict,
    render_text,
    span,
    timer,
    to_json,
    use_registry,
)
from repro.obs.stats import StatsBase
from repro.storage.device import PoolStats
from repro.storage.disk import IOStats


class TestRegistry:
    def test_counter_get_or_create_identity(self):
        reg = MetricsRegistry()
        c1 = reg.counter("a.b")
        c2 = reg.counter("a.b")
        assert c1 is c2
        c1.inc()
        c2.inc(4)
        assert reg.counter("a.b").value == 5

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.0)
        reg.gauge("g").set(2.5)
        assert reg.gauge("g").value == 2.5

    def test_reset_zeroes_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(9.0)
        reg.histogram("h").observe(0.5)
        reg.reset()
        assert reg.counter("c").value == 0
        assert reg.gauge("g").value == 0.0
        assert reg.histogram("h").count == 0

    def test_histogram_first_caller_fixes_buckets(self):
        reg = MetricsRegistry()
        h1 = reg.histogram("h", (1, 2))
        h2 = reg.histogram("h", (10, 20))
        assert h2 is h1
        assert h1.buckets == (1.0, 2.0)


class TestHistogramBuckets:
    def test_edges_are_inclusive_upper_bounds(self):
        h = Histogram("h", (1, 2, 4))
        for v in (1, 2, 4):  # exactly on an edge -> that bucket
            h.observe(v)
        assert h.counts == [1, 1, 1, 0]

    def test_overflow_and_underflow(self):
        h = Histogram("h", (1, 2, 4))
        h.observe(0.1)   # below first edge -> first bucket
        h.observe(100)   # beyond last edge -> overflow slot
        assert h.counts == [1, 0, 0, 1]

    def test_count_total_min_max_mean(self):
        h = Histogram("h", DEFAULT_COUNT_BUCKETS)
        for v in (1, 3, 8):
            h.observe(v)
        assert h.count == 3
        assert h.total == 12
        assert h.min == 1
        assert h.max == 8
        assert h.mean == 4

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", (4, 2, 1))


class TestSpans:
    def test_nesting_builds_a_tree(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            with span("outer"):
                with span("inner"):
                    pass
                with span("inner2"):
                    pass
        assert len(reg.spans) == 1
        root = reg.spans[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner", "inner2"]
        assert root.duration >= sum(c.duration for c in root.children)

    def test_span_records_latency_histogram(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            with timer("op"):
                pass
        assert reg.histogram("op.seconds").count == 1

    def test_current_span_tracks_innermost(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            assert current_span() is None
            with span("a") as a:
                assert current_span() is a
                with span("b") as b:
                    assert current_span() is b
                assert current_span() is a
            assert current_span() is None

    def test_null_registry_spans_are_noop(self):
        reg = NullRegistry()
        with use_registry(reg):
            with span("x") as s:
                pass
        assert len(reg.spans) == 0
        assert s.to_dict() == {}


class TestNullRegistry:
    def test_instruments_discard_everything(self):
        reg = NullRegistry()
        reg.counter("c").inc(5)
        reg.gauge("g").set(3.0)
        reg.histogram("h").observe(1.0)
        assert registry_to_dict(reg) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": [],
        }

    def test_use_registry_restores_previous(self):
        from repro.obs import get_registry

        before = get_registry()
        with use_registry(NullRegistry()) as reg:
            assert get_registry() is reg
        assert get_registry() is before


class TestExporters:
    def _populated(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            reg.counter("storage.disk.reads").inc(7)
            reg.gauge("acquisition.last_nrmse").set(0.01)
            h = reg.histogram("query.blocks_per_query", DEFAULT_COUNT_BUCKETS)
            for v in (1, 3, 900, 9999):
                h.observe(v)
            with span("query.exact"):
                with span("storage.fetch"):
                    pass
        return reg

    def test_round_trip_through_json(self):
        reg = self._populated()
        original = registry_to_dict(reg)
        rebuilt = registry_from_dict(json.loads(to_json(reg)))
        assert registry_to_dict(rebuilt) == original

    def test_text_report_mentions_every_instrument(self):
        text = render_text(self._populated())
        for name in (
            "storage.disk.reads",
            "acquisition.last_nrmse",
            "query.blocks_per_query",
            "query.exact",
            "storage.fetch",
        ):
            assert name in text


class TestStatsProtocol:
    """IOStats and PoolStats share one reset/snapshot/delta protocol."""

    @pytest.mark.parametrize("cls", [IOStats, PoolStats])
    def test_protocol_methods_present(self, cls):
        stats = cls()
        assert isinstance(stats, StatsBase)
        for method in ("reset", "snapshot", "delta", "as_dict"):
            assert callable(getattr(stats, method))

    def test_iostats_differencing(self):
        stats = IOStats(reads=3, writes=1)
        before = stats.snapshot()
        stats.reads += 4
        delta = stats.delta(before)
        assert (delta.reads, delta.writes) == (4, 0)

    def test_poolstats_differencing_and_reset(self):
        stats = PoolStats(hits=2, misses=3)
        before = stats.snapshot()
        stats.hits += 8
        stats.evictions += 1
        delta = stats.delta(before)
        assert (delta.hits, delta.misses, delta.evictions) == (8, 0, 1)
        stats.reset()
        assert stats.as_dict() == {
            "hits": 0, "misses": 0, "evictions": 0, "invalidations": 0,
        }

    def test_snapshot_is_independent(self):
        stats = PoolStats()
        snap = stats.snapshot()
        stats.hits += 5
        assert snap.hits == 0
        assert stats.hit_rate == 1.0


class TestFacadeMetrics:
    """A full acquire -> populate -> query -> recognize pass reports into
    the registry AIMS.metrics() exposes."""

    def test_end_to_end_pass_populates_registry(self):
        from repro.core.aims import AIMS, AIMSConfig
        from repro.online.recognizer import RecognizerConfig
        from repro.query.rangesum import RangeSumQuery
        from repro.sensors.asl import (
            ASL_VOCABULARY,
            synthesize_session,
            synthesize_sign,
        )
        from repro.streams.source import ArraySource

        rng = np.random.default_rng(7)
        with use_registry(MetricsRegistry()):
            system = AIMS(
                AIMSConfig(max_degree=1, block_size=7, pool_capacity=8)
            )
            reg = system.metrics()

            t = np.linspace(0.0, 1.0, 64)
            session = np.column_stack(
                [np.sin(2 * np.pi * 3 * t), np.cos(2 * np.pi * 5 * t)]
            )
            system.acquire(session, rate_hz=64.0)

            engine = system.populate("demo", np.ones((16, 16)))
            engine.evaluate_exact(RangeSumQuery.count([(2, 13), (1, 12)]))
            system.aggregates("demo").average(
                [(0, 15), (0, 15)], dim=1
            )

            specs = list(ASL_VOCABULARY[:2])
            system.train_vocabulary(
                {s.name: [synthesize_sign(s, rng).frames for _ in range(2)]
                 for s in specs}
            )
            frames, segments = synthesize_session(
                specs, rng, gap_duration=0.6
            )
            recognizer = system.recognizer(
                rest_frames=frames[: segments[0].start],
                config=RecognizerConfig(
                    window=50, compare_every=10,
                    declare_threshold=0.4, decline_steps=3,
                ),
            )
            recognizer.process(ArraySource(frames, rate_hz=60.0))

            # Every subsystem has reported in.
            assert reg.counter("acquisition.sessions").value == 1
            assert reg.counter("query.cubes_populated").value == 1
            assert reg.counter("query.exact.queries").value == 1
            assert reg.counter("aggregates.queries").value >= 1
            assert reg.counter("storage.disk.writes").value > 0
            assert reg.counter("storage.disk.reads").value > 0
            pool_traffic = (
                reg.counter("storage.pool.hits").value
                + reg.counter("storage.pool.misses").value
            )
            assert pool_traffic > 0
            assert (
                reg.counter("streams.frames_ingested").value == len(frames)
            )
            assert reg.counter("recognizer.frames").value == len(frames)
            assert reg.counter("recognizer.decisions").value > 0
            assert reg.histogram("query.blocks_per_query").count >= 1
            assert reg.histogram("query.exact.seconds").count == 1
            assert reg.histogram("acquisition.acquire.seconds").count == 1
            # Spans nest: the exact query contains its storage fetch.
            exact_roots = [
                s for s in reg.spans if s.name == "query.exact"
            ]
            assert exact_roots
            assert any(
                c.name == "storage.fetch"
                for c in exact_roots[0].children
            )
