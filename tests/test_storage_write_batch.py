"""Tests for the group-commit write path: ``write_many`` through every
middleware layer and ``store_blocks`` on the block stores.

The contract under test is the write-side twin of the coalesced read
path: one ``write_many`` per batch must leave the device stack in the
identical state N sequential ``write_block`` calls would, with metering
counting every member, caches invalidating every member (even when the
inner write fails partway), CRC framing validating the whole group
before any write, retries re-driving the group as one idempotent
operation, and shards receiving one coalesced sub-group each.
"""

import pytest

from repro.core.errors import StorageError
from repro.faults.plan import FaultPlan, FaultyDevice, InjectedWriteError
from repro.faults.retry import RetryPolicy
from repro.obs import MetricsRegistry, use_registry
from repro.storage.blockstore import TensorBlockStore, WaveletBlockStore
from repro.storage.device import (
    CachingDevice,
    CrcFramedDevice,
    MeteredDevice,
    ResilientDevice,
    StorageSpec,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.sharding import ShardedDevice

import numpy as np

from repro.storage.allocation import (
    TensorAllocation,
    subtree_tiling_allocation,
)


def _payloads(n=4, base=0):
    return {
        i: {i * 10 + j: float(base + i + j) for j in range(3)}
        for i in range(n)
    }


class TestLeafAndMetering:
    def test_disk_write_many_stores_every_member(self):
        disk = SimulatedDisk(block_size=8)
        blocks = _payloads()
        disk.write_many(blocks)
        for block_id, items in blocks.items():
            assert disk.read_block(block_id) == items

    def test_metered_counts_one_write_per_member(self):
        disk = SimulatedDisk(block_size=8)
        metered = MeteredDevice(disk, prefix="storage.disk")
        metered.write_many(_payloads(5))
        assert metered.writes == 5
        metered.write_block(99, {990: 1.0})
        assert metered.writes == 6


class TestCachingInvalidation:
    def test_group_write_invalidates_every_member(self):
        disk = SimulatedDisk(block_size=8)
        cache = CachingDevice(disk, capacity=8)
        cache.write_many(_payloads(3, base=0))
        for i in range(3):
            cache.read_block(i)  # warm
        cache.write_many(_payloads(3, base=100))
        for i in range(3):
            assert cache.read_block(i) == disk.read_block(i)
            assert cache.read_block(i)[i * 10] == float(100 + i)

    def test_partial_group_failure_still_invalidates_all(self):
        class HalfwayDisk(SimulatedDisk):
            """Leaf whose group write fails after the first member."""

            def write_many(self, blocks):
                for k, (block_id, items) in enumerate(blocks.items()):
                    if k == 1:
                        raise InjectedWriteError("mid-group failure")
                    self.write_block(block_id, items)

        disk = HalfwayDisk(block_size=8)
        cache = CachingDevice(disk, capacity=8)
        old = _payloads(2, base=0)
        for block_id, items in old.items():
            SimulatedDisk.write_block(disk, block_id, items)
        cache.read_block(0)
        cache.read_block(1)
        with pytest.raises(InjectedWriteError):
            cache.write_many(_payloads(2, base=100))
        # Block 0 reached the device before the failure; the cache must
        # not shadow it with the pre-write payload it had cached.
        assert cache.read_block(0) == disk.read_block(0)
        assert cache.read_block(0)[0] == 100.0
        assert cache.read_block(1) == disk.read_block(1)


class TestCrcFraming:
    def test_group_round_trips_through_frames(self):
        disk = SimulatedDisk(block_size=8)
        crc = CrcFramedDevice(disk)
        blocks = _payloads(3)
        crc.write_many(blocks)
        assert crc.read_many(list(blocks)) == blocks

    def test_group_validated_before_any_write(self):
        disk = SimulatedDisk(block_size=8)
        crc = CrcFramedDevice(disk)
        crc.write_many(_payloads(1))
        bad = {0: {0: 9.0, 1: 9.0, 2: 9.0}, 1: "not-a-dict"}
        with pytest.raises(StorageError):
            crc.write_many(bad)
        # The invalid member aborted the whole group before any write.
        assert crc.read_block(0) == _payloads(1)[0]


class TestResilientGroupRetry:
    def test_group_retried_as_one_idempotent_operation(self):
        plan = FaultPlan(seed=11, write_error_rate=0.5)
        disk = SimulatedDisk(block_size=8)
        faulty = FaultyDevice(disk, plan)
        policy = RetryPolicy(
            max_attempts=8, base_delay_s=0.0, max_delay_s=0.0, budget_s=1.0
        )
        resilient = ResilientDevice(faulty, retry_policy=policy)
        blocks = _payloads(4)
        resilient.write_many(blocks)
        for block_id, items in blocks.items():
            assert disk.read_block(block_id) == items

    def test_without_policy_failure_propagates(self):
        plan = FaultPlan(seed=0, write_error_rate=1.0)
        resilient = ResilientDevice(
            FaultyDevice(SimulatedDisk(block_size=8), plan)
        )
        with pytest.raises(InjectedWriteError):
            resilient.write_many(_payloads(2))


class TestShardedFanOut:
    def test_group_write_matches_sequential(self):
        def build():
            return ShardedDevice(
                [SimulatedDisk(block_size=8) for _ in range(3)]
            )

        blocks = _payloads(12)
        grouped = build()
        grouped.write_many(blocks)
        sequential = build()
        for block_id, items in blocks.items():
            sequential.write_block(block_id, items)
        for block_id in blocks:
            assert grouped.read_block(block_id) == (
                sequential.read_block(block_id)
            )
        assert grouped.io_totals().writes == len(blocks)
        grouped.close()
        sequential.close()

    def test_multi_shard_failures_aggregate_notes(self):
        class BrokenDisk(SimulatedDisk):
            """Leaf that rejects every write."""

            def write_block(self, block_id, items):
                raise InjectedWriteError(f"shard down: {block_id!r}")

        sharded = ShardedDevice([BrokenDisk(block_size=8) for _ in range(2)])
        blocks = {i: {i: 1.0} for i in range(8)}
        assert len({sharded.shard_of(i) for i in blocks}) == 2
        with pytest.raises(InjectedWriteError) as excinfo:
            sharded.write_many(blocks)
        assert any(
            "also failed" in note
            for note in getattr(excinfo.value, "__notes__", [])
        )
        sharded.close()


class TestStoreBlocks:
    def _tensor_store(self, **spec_kwargs):
        cube = np.arange(64, dtype=float).reshape(8, 8)
        allocation = TensorAllocation(
            axes=(
                subtree_tiling_allocation(8, 4),
                subtree_tiling_allocation(8, 4),
            )
        )
        return TensorBlockStore(
            cube, allocation, storage=StorageSpec(**spec_kwargs)
        )

    def test_store_blocks_matches_per_block_updates(self):
        batched = self._tensor_store(shards=2, cache_blocks=4)
        sequential = self._tensor_store(shards=2, cache_blocks=4)
        ids = batched.device.block_ids()
        payloads = {
            block_id: {
                key: value * 2.0
                for key, value in batched.fetch_block(block_id).items()
            }
            for block_id in ids
        }
        batched.store_blocks(payloads)
        for block_id, items in payloads.items():
            sequential.update_block(block_id, items)
        for block_id in ids:
            assert batched.fetch_block(block_id) == (
                sequential.fetch_block(block_id)
            )
        batched.close()
        sequential.close()

    def test_store_blocks_observes_batch_size_histogram(self):
        with use_registry(MetricsRegistry()) as reg:
            store = self._tensor_store()
            ids = store.device.block_ids()[:3]
            store.store_blocks(
                {block_id: store.fetch_block(block_id) for block_id in ids}
            )
            hist = reg.histogram("storage.blocks_per_write_batch")
            assert hist.count == 1
            store.close()

    def test_empty_store_blocks_is_a_no_op(self):
        store = self._tensor_store()
        before = store.io_snapshot()
        store.store_blocks({})
        assert store.io_since(before).writes == 0
        store.close()

    def test_wavelet_store_group_write_round_trips(self):
        values = np.arange(32, dtype=float)
        allocation = subtree_tiling_allocation(values.size, block_size=8)
        store = WaveletBlockStore(
            values, allocation, storage=StorageSpec(cache_blocks=2, crc=True)
        )
        ids = store.device.block_ids()
        payloads = {
            block_id: {
                key: value + 1.0
                for key, value in store.fetch_block(block_id).items()
            }
            for block_id in ids
        }
        store.store_blocks(payloads)
        for block_id, items in payloads.items():
            assert store.fetch_block(block_id) == items
        store.close()
