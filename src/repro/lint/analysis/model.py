"""The whole-program project model behind the deep analyzers.

The per-file rule packs see one :class:`~repro.lint.engine.FileContext`
at a time; the questions PR 10 asks — which attributes does this lock
actually guard, can these two locks nest both ways, can a bare
``ValueError`` escape a public storage entry point — need the whole
tree at once.  :func:`build_project` parses every file under the
configured roots exactly once, reduces each to a compact
:class:`ModuleSummary` (JSON-serializable, so the incremental cache can
skip re-parsing unchanged files), and assembles the cross-file indexes
the analyzers share:

* a **module graph** (who imports whom),
* a **class index** (methods, ``self.*`` accesses with the lockset
  held at each access, lock creations with their ``watched_lock`` site
  names, inferred attribute types),
* a **call graph** (``self.m()`` / ``self._attr.m()`` / same-module
  function calls, resolved best-effort),
* the **metric and schema registration sites** the drift checker
  diffs against the documentation catalogues.

Everything here is deliberately an over-approximation: the summaries
record what *may* happen (an access may run unguarded, a call may
nest two locks), and the analyzers report on the may-facts.  That is
the right polarity for contracts — a false alarm gets a justified
suppression; a missed race gets a pager.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.engine import FileContext

__all__ = [
    "Access",
    "CallSite",
    "ClassSummary",
    "FuncSummary",
    "LockAcquire",
    "MetricSite",
    "ModuleSummary",
    "ProjectModel",
    "RaiseSite",
    "build_project",
    "summarize",
]

#: Bump when the extraction below changes shape: cached summaries from
#: an older extractor are discarded, never misread.
MODEL_VERSION = 1

#: ``_lock`` / ``_update_lock`` / ... — the lock-naming contract.
_LOCK_NAME_RE = re.compile(r"^_(?:[a-z0-9]+_)*lock$")

#: ``repro.replay/v1``-style schema identifiers.
SCHEMA_RE = re.compile(r"\brepro\.[a-z0-9_.]+/v[0-9]+\b")

#: Metric-registry entry points (module functions and registry/obs
#: method forms).  ``span``/``timer`` sites register ``<name>.seconds``
#: histograms on exit.
_METRIC_CALLS = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
    "obs_counter": "counter",
    "obs_gauge": "gauge",
    "obs_histogram": "histogram",
}
_SPAN_CALLS = {"span", "timer"}

#: Container-mutating method names: ``self._x.append(...)`` counts as a
#: write to ``_x`` for race purposes.
_MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "add", "clear", "discard", "extend",
        "insert", "pop", "popleft", "popitem", "remove", "setdefault",
        "update",
    }
)


@dataclass(frozen=True)
class Access:
    """One ``self.<path>`` read or mutation, with the locks held."""

    path: str          # dotted attribute path from self, e.g. "_block_norms"
    kind: str          # "read" | "write"
    line: int
    locks: tuple[str, ...]  # lock paths held at the access site


@dataclass(frozen=True)
class CallSite:
    """One call whose target the analyzers may resolve.

    ``target`` shapes: ``("self", method)``, ``("selfattr", attr,
    method)``, ``("name", func)``, ``("mod", alias, func)``.
    """

    target: tuple[str, ...]
    line: int
    locks: tuple[str, ...]


@dataclass(frozen=True)
class LockAcquire:
    """One ``with self.<lock>`` entry, with the locks already held."""

    path: str
    line: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class RaiseSite:
    """One ``raise Name(...)`` statement."""

    exc: str
    line: int


@dataclass(frozen=True)
class MetricSite:
    """One metric registration; ``<>`` segments mark dynamic parts."""

    kind: str   # counter | gauge | histogram
    name: str   # literal name, or pattern with <> placeholders
    line: int

    @property
    def is_pattern(self) -> bool:
        """Whether part of the name is computed at runtime."""
        return "<" in self.name


@dataclass
class FuncSummary:
    """One function or method, reduced to analyzer-relevant facts."""

    name: str
    line: int
    accesses: list[Access] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    acquires: list[LockAcquire] = field(default_factory=list)
    raises: list[RaiseSite] = field(default_factory=list)

    @property
    def public(self) -> bool:
        """Whether outside callers may invoke this directly."""
        return not self.name.startswith("_") or (
            self.name.startswith("__") and self.name.endswith("__")
        )


@dataclass
class ClassSummary:
    """One class: methods, lock creations, inferred attribute types."""

    name: str
    line: int
    methods: dict[str, FuncSummary] = field(default_factory=dict)
    #: lock attribute -> watched_lock site name ("" when unnamed).
    lock_attrs: dict[str, str] = field(default_factory=dict)
    #: self attribute -> class name it was constructed from.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleSummary:
    """Everything the deep analyzers need from one parsed file."""

    path: str
    module: str
    digest: str
    imports: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    functions: dict[str, FuncSummary] = field(default_factory=dict)
    metrics: list[MetricSite] = field(default_factory=list)
    schemas: list[tuple[str, int]] = field(default_factory=list)
    file_ignores: list[str] = field(default_factory=list)
    line_ignores: dict[int, list[str]] = field(default_factory=dict)
    parse_error: int | None = None  # line of the SyntaxError, if any

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Mirror of :meth:`FileContext.is_suppressed` for deep runs."""
        ids = set(self.line_ignores.get(line, ())) | set(self.file_ignores)
        return rule_id in ids or "*" in ids


# -- serialization (the incremental cache stores summaries as JSON) ---------


def _to_dict(obj):
    if isinstance(obj, (Access, CallSite, LockAcquire, RaiseSite,
                        MetricSite)):
        return {k: _to_dict(v) for k, v in vars(obj).items()}
    if isinstance(obj, (FuncSummary, ClassSummary, ModuleSummary)):
        return {k: _to_dict(v) for k, v in vars(obj).items()}
    if isinstance(obj, dict):
        return {str(k): _to_dict(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_dict(v) for v in obj]
    return obj


def summary_to_dict(summary: ModuleSummary) -> dict:
    """JSON form of a summary (the cache's per-file payload)."""
    return _to_dict(summary)


def _func_from_dict(data: dict) -> FuncSummary:
    return FuncSummary(
        name=data["name"],
        line=data["line"],
        accesses=[
            Access(a["path"], a["kind"], a["line"], tuple(a["locks"]))
            for a in data["accesses"]
        ],
        calls=[
            CallSite(tuple(c["target"]), c["line"], tuple(c["locks"]))
            for c in data["calls"]
        ],
        acquires=[
            LockAcquire(a["path"], a["line"], tuple(a["held"]))
            for a in data["acquires"]
        ],
        raises=[RaiseSite(r["exc"], r["line"]) for r in data["raises"]],
    )


def summary_from_dict(data: dict) -> ModuleSummary:
    """Rebuild a summary from its JSON form."""
    return ModuleSummary(
        path=data["path"],
        module=data["module"],
        digest=data["digest"],
        imports=dict(data["imports"]),
        classes={
            name: ClassSummary(
                name=cls["name"],
                line=cls["line"],
                methods={
                    m: _func_from_dict(fn)
                    for m, fn in cls["methods"].items()
                },
                lock_attrs=dict(cls["lock_attrs"]),
                attr_types=dict(cls["attr_types"]),
            )
            for name, cls in data["classes"].items()
        },
        functions={
            name: _func_from_dict(fn)
            for name, fn in data["functions"].items()
        },
        metrics=[
            MetricSite(m["kind"], m["name"], m["line"])
            for m in data["metrics"]
        ],
        schemas=[(s, line) for s, line in data["schemas"]],
        file_ignores=list(data["file_ignores"]),
        line_ignores={
            int(line): list(ids)
            for line, ids in data["line_ignores"].items()
        },
        parse_error=data["parse_error"],
    )


# -- extraction -------------------------------------------------------------


def _self_lock_path(node: ast.expr) -> str | None:
    """``self._lock`` / ``self.engine._update_lock`` -> dotted lock path."""
    if not (isinstance(node, ast.Attribute)
            and _LOCK_NAME_RE.match(node.attr)):
        return None
    parts = [node.attr]
    value = node.value
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if isinstance(value, ast.Name) and value.id == "self":
        return ".".join(reversed(parts))
    return None


def _self_attr_path(node: ast.expr) -> str | None:
    """``self.a.b`` -> ``"a.b"``; ``None`` for non-self chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return ".".join(reversed(parts))
    return None


def _call_target(node: ast.Call) -> tuple[str, ...] | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            if value.id == "self":
                return ("self", func.attr)
            return ("mod", value.id, func.attr)
        if (isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"):
            return ("selfattr", value.attr, func.attr)
        return None
    if isinstance(func, ast.Name):
        return ("name", func.id)
    return None


def _metric_name(arg: ast.expr) -> str | None:
    """Literal or ``<>``-patterned metric name from a call's first arg.

    Handles plain strings, f-strings (formatted fields become ``<>``),
    and ``+`` concatenations.  Fully-dynamic names (no literal part at
    all) come back as ``"<>"``.
    """
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        parts = []
        for piece in arg.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:
                parts.append("<>")
        return "".join(parts)
    if isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Add):
        left = _metric_name(arg.left)
        right = _metric_name(arg.right)
        if left is not None or right is not None:
            return (left or "<>") + (right or "<>")
        return None
    if isinstance(arg, (ast.Name, ast.Attribute)):
        return "<>"
    return None


class _FuncExtractor:
    """Walks one function body tracking the held-lock stack."""

    def __init__(self, fn: FuncSummary) -> None:
        self.fn = fn
        self.locks: list[str] = []

    def held(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.locks))

    def walk_body(self, stmts) -> None:
        for stmt in stmts:
            self.visit(stmt)

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return  # nested defs run later, outside this lockset
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = []
            for item in node.items:
                path = _self_lock_path(item.context_expr)
                if path is not None:
                    self.fn.acquires.append(
                        LockAcquire(path, item.context_expr.lineno,
                                    self.held())
                    )
                    acquired.append(path)
                else:
                    self.visit_expr(item.context_expr)
                if item.optional_vars is not None:
                    self.visit_expr(item.optional_vars)
            self.locks.extend(acquired)
            self.walk_body(node.body)
            if acquired:
                del self.locks[len(self.locks) - len(acquired):]
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self.visit_target(target)
            self.visit_expr(node.value)
            return
        if isinstance(node, ast.AugAssign):
            self.visit_target(node.target)
            self.visit_expr(node.target)  # aug targets are read too
            self.visit_expr(node.value)
            return
        if isinstance(node, ast.AnnAssign):
            self.visit_target(node.target)
            if node.value is not None:
                self.visit_expr(node.value)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self.visit_target(target)
            return
        if isinstance(node, ast.Raise):
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name is not None:
                self.fn.raises.append(RaiseSite(name, node.lineno))
            for child in ast.iter_child_nodes(node):
                self.visit_expr(child)
            return
        # Generic statement: expressions inside get expression handling,
        # nested statements recurse.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self.visit(child)
            elif isinstance(child, ast.expr):
                self.visit_expr(child)
            elif isinstance(child, (ast.excepthandler, ast.match_case)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self.visit(sub)
                    elif isinstance(sub, ast.expr):
                        self.visit_expr(sub)

    def visit_target(self, node: ast.expr) -> None:
        """An assignment/delete target: find the mutated self-path."""
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self.visit_target(elt)
            return
        if isinstance(node, ast.Starred):
            self.visit_target(node.value)
            return
        base = node
        sliced = False
        while isinstance(base, ast.Subscript):
            self.visit_expr(base.slice)
            base = base.value
            sliced = True
        path = _self_attr_path(base)
        if path is not None:
            self.fn.accesses.append(
                Access(path, "write", node.lineno, self.held())
            )
            if sliced:
                # `self._x[k] = v` also reads the container binding.
                self.fn.accesses.append(
                    Access(path, "read", node.lineno, self.held())
                )
        else:
            self.visit_expr(base)

    def visit_expr(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return
        if isinstance(node, ast.Call):
            target = _call_target(node)
            if target is not None:
                self.fn.calls.append(
                    CallSite(target, node.lineno, self.held())
                )
            # `self._x.append(...)` mutates the container behind _x.
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS):
                path = _self_attr_path(func.value)
                if path is not None:
                    self.fn.accesses.append(
                        Access(path, "write", node.lineno, self.held())
                    )
            for child in ast.iter_child_nodes(node):
                if child is not func or not isinstance(
                    func, (ast.Name, ast.Attribute)
                ):
                    self.visit_expr(child)
                elif isinstance(func, ast.Attribute):
                    self.visit_expr(func.value)
            return
        if isinstance(node, ast.Attribute):
            path = _self_attr_path(node)
            if path is not None:
                self.fn.accesses.append(
                    Access(path, "read", node.lineno, self.held())
                )
                return
            self.visit_expr(node.value)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.visit_expr(child)
            elif isinstance(child, ast.stmt):
                self.visit(child)
            elif isinstance(child, ast.comprehension):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.expr):
                        self.visit_expr(sub)


_LOCK_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "watched_lock", "watched_rlock"}
)


def _extract_class(node: ast.ClassDef) -> ClassSummary:
    cls = ClassSummary(name=node.name, line=node.lineno)
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        fn = FuncSummary(name=item.name, line=item.lineno)
        _FuncExtractor(fn).walk_body(item.body)
        cls.methods[item.name] = fn
        # Lock creations and attribute types come from simple
        # `self.x = Ctor(...)` assignments anywhere in the class.
        for stmt in ast.walk(item):
            if not isinstance(stmt, ast.Assign):
                continue
            value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            func = value.func
            ctor = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if ctor is None:
                continue
            for target in stmt.targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                attr = target.attr
                if ctor in _LOCK_CONSTRUCTORS:
                    site = ""
                    if (value.args
                            and isinstance(value.args[0], ast.Constant)
                            and isinstance(value.args[0].value, str)):
                        site = value.args[0].value
                    cls.lock_attrs[attr] = site
                elif ctor[:1].isupper():
                    cls.attr_types[attr] = ctor
    return cls


def summarize(ctx: FileContext, digest: str) -> ModuleSummary:
    """Reduce one parsed file to its analyzer-relevant summary."""
    summary = ModuleSummary(
        path=ctx.path,
        module=ctx.module,
        digest=digest,
        file_ignores=sorted(ctx._file_ignores),
        line_ignores={
            line: sorted(ids)
            for line, ids in ctx._line_ignores.items()
        },
    )
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                summary.imports[alias.asname
                                or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module:
                for alias in node.names:
                    summary.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef):
            summary.classes[node.name] = _extract_class(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FuncSummary(name=node.name, line=node.lineno)
            _FuncExtractor(fn).walk_body(node.body)
            summary.functions[node.name] = fn
    # Metric registration sites (the obs package itself is plumbing
    # that re-emits caller-supplied names; its sites are not
    # registrations).
    if not ctx.in_package("repro.obs"):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            fname = (func.id if isinstance(func, ast.Name)
                     else func.attr if isinstance(func, ast.Attribute)
                     else None)
            if fname in _METRIC_CALLS:
                name = _metric_name(node.args[0])
                if name is not None:
                    summary.metrics.append(
                        MetricSite(_METRIC_CALLS[fname], name,
                                   node.lineno)
                    )
            elif fname in _SPAN_CALLS:
                name = _metric_name(node.args[0])
                if name is not None:
                    summary.metrics.append(
                        MetricSite("histogram", name + ".seconds",
                                   node.lineno)
                    )
    for lineno, text in enumerate(ctx.source.splitlines(), start=1):
        for match in SCHEMA_RE.finditer(text):
            summary.schemas.append((match.group(0), lineno))
    return summary


@dataclass
class ProjectModel:
    """The parsed project: summaries plus the cross-file indexes."""

    root: str
    summaries: dict[str, ModuleSummary]  # path -> summary
    #: class name -> (path, ClassSummary); single winner per name (the
    #: tree keeps class names unique; collisions keep the first, which
    #: the analyzers tolerate as an over-approximation).
    class_index: dict[str, tuple[str, ClassSummary]] = field(
        default_factory=dict
    )
    #: module dotted name -> path
    module_index: dict[str, str] = field(default_factory=dict)
    #: module graph: module -> imported repro modules
    module_graph: dict[str, set[str]] = field(default_factory=dict)
    #: files parsed fresh this run (cache misses)
    parsed: int = 0
    #: files loaded from the incremental cache
    cached: int = 0

    def build_indexes(self) -> None:
        """(Re)derive the cross-file indexes from the summaries."""
        self.class_index.clear()
        self.module_index.clear()
        self.module_graph.clear()
        for path in sorted(self.summaries):
            summary = self.summaries[path]
            if summary.module:
                self.module_index[summary.module] = path
            for name, cls in summary.classes.items():
                self.class_index.setdefault(name, (path, cls))
        for path in sorted(self.summaries):
            summary = self.summaries[path]
            if not summary.module:
                continue
            deps = set()
            for target in summary.imports.values():
                base = target
                while base and base not in self.module_index:
                    base = base.rpartition(".")[0]
                if base and base != summary.module:
                    deps.add(base)
            self.module_graph[summary.module] = deps

    def modules(self) -> list[ModuleSummary]:
        """Summaries in stable path order."""
        return [self.summaries[p] for p in sorted(self.summaries)]

    def find_class(self, name: str) -> ClassSummary | None:
        """Look a class up by bare name (best-effort, first winner)."""
        entry = self.class_index.get(name)
        return entry[1] if entry else None

    def class_path(self, name: str) -> str | None:
        """The file a class was defined in."""
        entry = self.class_index.get(name)
        return entry[0] if entry else None


def iter_source_files(root: Path, roots) -> list[Path]:
    """Every ``.py`` file under the configured roots, sorted."""
    files: list[Path] = []
    for rel in roots:
        base = root / rel
        if base.is_dir():
            files.extend(
                p for p in base.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif base.is_file():
            files.append(base)
    return sorted(set(files))


def build_project(root, config, cache=None) -> ProjectModel:
    """Parse the configured roots into a :class:`ProjectModel`.

    ``cache`` is an optional :class:`~repro.lint.analysis.cache
    .AnalysisCache`; files whose content hash matches the cached entry
    are restored from their stored summary without re-parsing.
    """
    root = Path(root)
    model = ProjectModel(root=str(root), summaries={})
    for file in iter_source_files(root, config.roots):
        rel = file.relative_to(root).as_posix()
        source = file.read_text()
        digest = content_digest(source)
        if cache is not None:
            hit = cache.lookup(rel, digest)
            if hit is not None:
                model.summaries[rel] = hit
                model.cached += 1
                continue
        try:
            ctx = FileContext(rel, source)
        except SyntaxError as exc:
            summary = ModuleSummary(
                path=rel, module="", digest=digest,
                parse_error=exc.lineno or 1,
            )
        else:
            summary = summarize(ctx, digest)
        model.summaries[rel] = summary
        model.parsed += 1
        if cache is not None:
            cache.store(rel, summary)
    model.build_indexes()
    return model


def content_digest(source: str) -> str:
    """Content hash keying the incremental cache (sha1 is plenty)."""
    import hashlib

    return hashlib.sha1(source.encode()).hexdigest()
