"""The immersidata record schema (§2.1).

"Each tracker data consists of 6 dimensions: X, Y and Z values
corresponding to tracker position in the space and H, P and R parameters
representing tracker rotation ...  Therefore, the data set in general has
8 dimensions: in addition to the above mentioned 6 values, there are the
time-stamp and sensor-id attributes."

:class:`ImmersidataRecord` is that 8-dimensional tuple;
:func:`records_to_relation` quantizes a batch of records into the integer
relation ProPolyne's frequency-cube model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import SchemaError

__all__ = ["ImmersidataRecord", "RECORD_FIELDS", "records_to_relation"]

RECORD_FIELDS = ("sensor_id", "timestamp", "x", "y", "z", "h", "p", "r")


@dataclass(frozen=True, slots=True)
class ImmersidataRecord:
    """One 8-dimensional tracker reading."""

    sensor_id: int
    timestamp: float
    x: float
    y: float
    z: float
    h: float
    p: float
    r: float

    def __post_init__(self) -> None:
        if self.sensor_id < 0:
            raise SchemaError(f"negative sensor_id {self.sensor_id}")
        if self.timestamp < 0:
            raise SchemaError(f"negative timestamp {self.timestamp}")
        for angle_name in ("h", "p", "r"):
            angle = getattr(self, angle_name)
            if not -360.0 <= angle <= 360.0:
                raise SchemaError(
                    f"rotation {angle_name}={angle} outside [-360, 360]"
                )

    def as_tuple(self) -> tuple[float, ...]:
        """Values in :data:`RECORD_FIELDS` order."""
        return (
            float(self.sensor_id), self.timestamp,
            self.x, self.y, self.z, self.h, self.p, self.r,
        )


def records_to_relation(
    records: list[ImmersidataRecord],
    fields: tuple[str, ...],
    bins: dict[str, int],
) -> tuple[np.ndarray, tuple[int, ...], dict[str, tuple[float, float]]]:
    """Quantize records into an integer relation over chosen fields.

    Args:
        records: The batch to convert.
        fields: Which record fields become relation attributes, in order.
        bins: Per-field bin count.  ``sensor_id`` keeps its integer values
            and its bin count must cover the largest id present.

    Returns:
        ``(relation, shape, scales)``: the ``(n, len(fields))`` integer
        relation, the per-attribute domain sizes, and per-field
        ``(offset, step)`` so attribute index ``k`` decodes to
        ``offset + k * step``.
    """
    if not records:
        raise SchemaError("no records to convert")
    unknown = [f for f in fields if f not in RECORD_FIELDS]
    if unknown:
        raise SchemaError(f"unknown record fields: {unknown}")
    missing = [f for f in fields if f not in bins]
    if missing:
        raise SchemaError(f"bin counts missing for fields: {missing}")

    matrix = np.array([r.as_tuple() for r in records])
    columns = []
    scales: dict[str, tuple[float, float]] = {}
    shape = []
    for field_name in fields:
        col = matrix[:, RECORD_FIELDS.index(field_name)]
        n_bins = bins[field_name]
        if n_bins < 2:
            raise SchemaError(
                f"field {field_name!r}: need >= 2 bins, got {n_bins}"
            )
        if field_name == "sensor_id":
            ids = col.astype(int)
            if ids.max() >= n_bins:
                raise SchemaError(
                    f"sensor_id {ids.max()} exceeds bin count {n_bins}"
                )
            columns.append(ids)
            scales[field_name] = (0.0, 1.0)
        else:
            lo, hi = float(col.min()), float(col.max())
            step = (hi - lo) / (n_bins - 1) if hi > lo else 1.0
            columns.append(
                np.clip(np.round((col - lo) / step), 0, n_bins - 1).astype(int)
            )
            scales[field_name] = (lo, step)
        shape.append(n_bins)
    return np.column_stack(columns), tuple(shape), scales
