"""Regression tests: storage-cache coherence and copy semantics.

Two bugs fixed in the observability PR live here so they cannot return,
re-expressed against the layered device stack:

* stale reads — a write used to be able to bypass the cache and leave
  it serving the old payload; now every write enters through
  :class:`~repro.storage.device.CachingDevice`, whose write-through
  invalidation is an internal invariant (the weak-ref side channel on
  the disk is gone);
* cache-state leaks — the cache must hand out copies, so mutating a
  returned block can never corrupt the cached (or on-device) payload,
  while a cached read costs exactly one copy.
"""

import numpy as np

from repro.storage.allocation import subtree_tiling_allocation
from repro.storage.blockstore import WaveletBlockStore
from repro.storage.device import CachingDevice
from repro.storage.disk import SimulatedDisk


def build_cached(block_size=4, capacity=2):
    """One cache over one disk — the minimal coherent stack."""
    disk = SimulatedDisk(block_size=block_size)
    return disk, CachingDevice(disk, capacity=capacity)


class TestWriteThroughInvalidation:
    def test_write_through_stack_invalidates_cached_block(self):
        disk, cache = build_cached()
        cache.write_block(0, {0: 1.0, 1: 2.0})
        assert cache.read_block(0) == {0: 1.0, 1: 2.0}
        # The write enters through the stack, so the cache invalidates
        # its own copy — no side channel, no opt-in hook.
        cache.write_block(0, {0: 9.0, 1: 2.0})
        assert cache.read_block(0) == {0: 9.0, 1: 2.0}
        assert disk.read_block(0) == {0: 9.0, 1: 2.0}
        assert cache.pool_stats.invalidations == 1

    def test_untouched_blocks_stay_cached(self):
        disk, cache = build_cached(block_size=2, capacity=4)
        cache.write_block(0, {0: 1.0})
        cache.write_block(1, {1: 5.0})
        cache.read_block(0)
        cache.read_block(1)
        cache.write_block(0, {0: 2.0})
        before = cache.pool_stats.snapshot()
        assert cache.read_block(1) == {1: 5.0}
        assert cache.pool_stats.delta(before).hits == 1  # still served hot

    def test_store_update_through_cache_is_coherent(self):
        flat = np.arange(16, dtype=float)
        store = WaveletBlockStore(
            flat, subtree_tiling_allocation(16, 3), pool_capacity=8
        )
        # Warm the cache over every block, then update one coefficient.
        store.fetch(list(range(16)))
        store.update(5, 123.0)
        assert store.fetch([5])[5] == 123.0

    def test_manual_invalidate_still_available(self):
        disk, cache = build_cached(block_size=2)
        cache.write_block(0, {0: 1.0})
        cache.read_block(0)
        cache.invalidate(0)
        before = cache.pool_stats.snapshot()
        cache.read_block(0)
        assert cache.pool_stats.delta(before).misses == 1

    def test_disk_has_no_invalidation_side_channel(self):
        # The old design registered caches on the disk through a weak-ref
        # set; the leaf device must know nothing about caches now.
        disk = SimulatedDisk(block_size=2)
        assert not hasattr(disk, "attach_cache")
        assert not hasattr(disk, "_caches")


class TestReturnedBlockOwnership:
    def test_mutating_miss_result_does_not_corrupt_cache(self):
        disk, cache = build_cached()
        cache.write_block(0, {0: 1.0, 1: 2.0})
        returned = cache.read_block(0)  # miss
        returned[0] = 666.0
        returned[7] = -1.0
        assert cache.read_block(0) == {0: 1.0, 1: 2.0}

    def test_mutating_hit_result_does_not_corrupt_cache(self):
        disk, cache = build_cached()
        cache.write_block(0, {0: 1.0})
        cache.read_block(0)
        hit = cache.read_block(0)
        hit[0] = 666.0
        assert cache.read_block(0) == {0: 1.0}

    def test_mutating_cache_result_does_not_corrupt_device(self):
        disk, cache = build_cached()
        cache.write_block(0, {0: 1.0})
        cache.read_block(0)[0] = 666.0
        cache.clear()
        assert disk.read_block(0) == {0: 1.0}

    def test_miss_serves_device_payload_without_extra_copy(self):
        # Single-copy reads: the cache entry is the device payload itself
        # (one shared, never-mutated instance); only the caller's copy is
        # fresh.
        disk, cache = build_cached()
        cache.write_block(0, {0: 1.0})
        returned = cache.read_block(0)
        assert returned == {0: 1.0}
        assert cache._cache[0] is disk._blocks[0]
        assert returned is not cache._cache[0]

    def test_hit_serves_the_same_shared_instance(self):
        # Single-copy reads on the hit path too: a shared read returns
        # the cached instance itself, with no per-hit copying.
        disk, cache = build_cached()
        cache.write_block(0, {0: 1.0})
        first = cache.read_block_shared(0)
        second = cache.read_block_shared(0)
        assert first is second
        assert cache.pool_stats.hits == 1

    def test_shared_read_counts_io(self):
        disk = SimulatedDisk(block_size=4)
        disk.write_block(0, {0: 1.0})
        before = disk.io.snapshot()
        shared = disk.read_block_shared(0)
        assert shared == {0: 1.0}
        assert disk.io.delta(before).reads == 1
