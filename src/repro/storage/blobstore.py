"""A BLOB store with location ids.

§4 of the paper: "currently, these blocks are stored as BLOBs (using
Teradata's BYTE data type) within Teradata.  However, we plan to store
them as disk blocks on raw disk and instead only store their location IDs
in Teradata."  This module models that catalog: named binary objects
addressed by opaque location ids, with byte accounting, so the AIMS facade
can persist packed coefficient blocks either way — BLOBs in the in-memory
catalog, or (the paper's "raw disk" plan) as opaque byte payloads on any
:class:`~repro.storage.device.BlockDevice` passed as ``device``, with
only the name/size catalog kept here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import StorageError

__all__ = ["BlobRef", "BlobStore"]


@dataclass(frozen=True)
class BlobRef:
    """Opaque location id handed back by :meth:`BlobStore.put`."""

    location_id: int
    name: str
    n_bytes: int


@dataclass
class BlobStore:
    """BLOB catalog: in-memory, or backed by any block device.

    With ``device`` ``None`` payload bytes live in the catalog itself;
    with a :class:`~repro.storage.device.BlockDevice` (or a full
    middleware stack) they are stored as opaque blocks keyed
    ``("blob", location_id)``, and only names/sizes stay here —
    deleting a blob drops its catalog entry, block reclamation being
    the device's compaction problem.
    """

    device: object = None
    _blobs: dict[int, bytes] = field(default_factory=dict)
    _names: dict[int, str] = field(default_factory=dict)
    _sizes: dict[int, int] = field(default_factory=dict)
    _next_id: int = 0

    def put(self, name: str, payload: bytes) -> BlobRef:
        """Store a blob, returning its location id."""
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError(
                f"blob payload must be bytes, got {type(payload).__name__}"
            )
        location = self._next_id
        self._next_id += 1
        if self.device is not None:
            self.device.write_block(("blob", location), bytes(payload))
        else:
            self._blobs[location] = bytes(payload)
        self._names[location] = name
        self._sizes[location] = len(payload)
        return BlobRef(location_id=location, name=name, n_bytes=len(payload))

    def put_array(self, name: str, array: np.ndarray) -> BlobRef:
        """Store a float array as a blob (little-endian float64)."""
        data = np.asarray(array, dtype="<f8")
        return self.put(name, data.tobytes())

    def get(self, ref: BlobRef | int) -> bytes:
        """Fetch a blob by reference or raw location id."""
        location = ref.location_id if isinstance(ref, BlobRef) else ref
        if location not in self._names:
            raise StorageError(f"no blob at location {location}")
        if self.device is not None:
            return bytes(self.device.read_block(("blob", location)))
        return self._blobs[location]

    def get_array(self, ref: BlobRef | int) -> np.ndarray:
        """Fetch a blob stored with :meth:`put_array`."""
        return np.frombuffer(self.get(ref), dtype="<f8").copy()

    def delete(self, ref: BlobRef | int) -> None:
        """Remove a blob (its catalog entry; device-backed payload
        blocks are left for the device to reclaim)."""
        location = ref.location_id if isinstance(ref, BlobRef) else ref
        if location not in self._names:
            raise StorageError(f"no blob at location {location}")
        self._blobs.pop(location, None)
        del self._names[location]
        del self._sizes[location]

    def __len__(self) -> int:
        return len(self._names)

    @property
    def total_bytes(self) -> int:
        """Bytes held across all blobs."""
        return sum(self._sizes.values())

    def catalog(self) -> list[BlobRef]:
        """All stored blobs as references."""
        return [
            BlobRef(location_id=loc, name=name, n_bytes=self._sizes[loc])
            for loc, name in sorted(self._names.items())
        ]
