"""Double-buffered asynchronous acquisition, simulated.

§3.1 of the AIMS paper describes the authors' recording strategy: "a simple
multi-threaded double buffering approach — one thread answering the handler
call and copying sensor data into a region of system memory, a second
thread working asynchronously to process and store that data to disk."

This module reproduces that design as a discrete-event simulation (real
threads would add nondeterminism without adding fidelity: the paper's point
is about buffer sizing and loss, not OS scheduling).  The producer fills
the active buffer at the device rate; whenever a buffer fills, the roles
swap and the consumer drains the full buffer at its own throughput.  If the
consumer has not finished by the next swap, incoming frames are dropped —
the overload statistic the experiment reports.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.errors import StreamError
from repro.streams.sample import Frame

__all__ = ["DoubleBuffer", "AcquisitionStats"]


@dataclass
class AcquisitionStats:
    """Bookkeeping from one simulated acquisition run."""

    produced: int = 0
    stored: int = 0
    dropped: int = 0
    swaps: int = 0

    @property
    def loss_rate(self) -> float:
        """Fraction of produced frames that were dropped."""
        return self.dropped / self.produced if self.produced else 0.0


@dataclass
class DoubleBuffer:
    """Simulated two-buffer asynchronous recorder.

    Args:
        capacity: Frames each buffer holds before a swap.
        drain_rate: Frames the storage thread can persist per produced
            frame (>= 1.0 means storage keeps up, < 1.0 models a slow
            disk).
    """

    capacity: int
    drain_rate: float = 2.0
    _active: list[Frame] = field(default_factory=list)
    _draining: list[Frame] = field(default_factory=list)
    _drain_credit: float = 0.0
    stats: AcquisitionStats = field(default_factory=AcquisitionStats)
    stored_frames: list[Frame] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise StreamError(f"buffer capacity must be positive, got {self.capacity}")
        if self.drain_rate <= 0:
            raise StreamError(f"drain rate must be positive, got {self.drain_rate}")

    def push(self, frame: Frame) -> None:
        """Producer side: called once per device tick."""
        self.stats.produced += 1
        # The storage thread gets drain_rate frames of progress per tick.
        self._drain_credit += self.drain_rate
        while self._draining and self._drain_credit >= 1.0:
            self.stored_frames.append(self._draining.pop(0))
            self.stats.stored += 1
            self._drain_credit -= 1.0

        if len(self._active) < self.capacity:
            self._active.append(frame)
            return
        # Active buffer full: swap if the drain buffer is empty, else drop.
        if self._draining:
            self.stats.dropped += 1
            return
        self._draining = self._active
        self._active = [frame]
        self._drain_credit = 0.0
        self.stats.swaps += 1

    def flush(self) -> None:
        """End of session: persist whatever remains in both buffers."""
        for frame in self._draining + self._active:
            self.stored_frames.append(frame)
            self.stats.stored += 1
        self._draining = []
        self._active = []

    def record(self, stream: Iterable[Frame]) -> AcquisitionStats:
        """Run a whole stream through the recorder and flush."""
        for frame in stream:
            self.push(frame)
        self.flush()
        return self.stats
