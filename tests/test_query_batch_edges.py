"""Edge cases of the shared-I/O batch evaluator (`repro.query.batch`).

The contract under test: whatever the batch shape — empty, singleton, or
overlapping group-by cells — shared evaluation must return exactly what
independent evaluation returns, while never reading a block twice.
"""

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.query.batch import BatchEvaluator, group_by
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery, evaluate_on_cube


@pytest.fixture(scope="module")
def cube():
    rng = np.random.default_rng(23)
    return rng.poisson(2.0, (32, 32)).astype(float)


@pytest.fixture(scope="module")
def engine(cube):
    return ProPolyneEngine(cube, max_degree=1, pool_capacity=None)


class TestBatchEdgeCases:
    def test_empty_batch_is_rejected(self, engine):
        evaluator = BatchEvaluator(engine)
        with pytest.raises(QueryError):
            evaluator.evaluate_exact([])
        with pytest.raises(QueryError):
            list(evaluator.evaluate_progressive([]))

    def test_single_query_batch_matches_independent(self, engine):
        query = RangeSumQuery.count([(3, 19), (8, 27)])
        evaluator = BatchEvaluator(engine)
        # Summation order differs (block-wise vs entry-wise), so equality
        # holds to float accumulation accuracy, not bitwise.
        assert evaluator.evaluate_exact([query])[0] == pytest.approx(
            engine.evaluate_exact(query), rel=1e-12
        )
        # The shared plan for one query reads exactly its own blocks.
        assert evaluator.shared_block_count(
            [query]
        ) == evaluator.independent_block_count([query])

    def test_single_query_progressive_converges_to_exact(self, engine):
        query = RangeSumQuery.count([(5, 14), (2, 23)])
        evaluator = BatchEvaluator(engine)
        last = None
        for step in evaluator.evaluate_progressive([query]):
            last = step
        assert last.estimates[0] == pytest.approx(
            engine.evaluate_exact(query)
        )
        assert last.error_bounds[0] == pytest.approx(0.0, abs=1e-6)

    def test_overlapping_ranges_match_independent(self, engine, cube):
        # Heavily overlapping drill-down cells: the shared plan merges
        # most of their blocks, yet every answer must equal both the
        # independent engine answer and the dense reference.
        queries = [
            RangeSumQuery.count([(0, 15), (0, 15)]),
            RangeSumQuery.count([(4, 19), (4, 19)]),
            RangeSumQuery.count([(8, 23), (8, 23)]),
            RangeSumQuery.count([(8, 23), (4, 19)]),
        ]
        evaluator = BatchEvaluator(engine)
        values = evaluator.evaluate_exact(queries)
        for value, query in zip(values, queries):
            assert value == pytest.approx(engine.evaluate_exact(query))
            assert value == pytest.approx(evaluate_on_cube(cube, query))
        # Overlap means shared I/O strictly beats independent I/O here.
        assert evaluator.shared_block_count(
            queries
        ) < evaluator.independent_block_count(queries)

    def test_group_by_cells_overlapping_constraint_match_independent(
        self, engine, cube
    ):
        # Group-by over dim 0 with a constraint on dim 1: every cell
        # shares the dim-1 range, so cells overlap block-wise.  Each
        # cell's value must match an independently evaluated cell query.
        result = group_by(engine, dim=0, group_width=8,
                          other_ranges={1: (4, 27)})
        assert result.labels == ((0, 7), (8, 15), (16, 23), (24, 31))
        for (lo, hi), value in result.as_dict().items():
            cell = RangeSumQuery.count([(lo, hi), (4, 27)])
            assert value == pytest.approx(engine.evaluate_exact(cell))
            assert value == pytest.approx(evaluate_on_cube(cube, cell))
        assert result.blocks_read <= result.blocks_independent
        assert 0.0 <= result.io_saving < 1.0

    def test_batch_progressive_final_bounds_all_zero(self, engine):
        queries = [
            RangeSumQuery.count([(0, 15), (0, 15)]),
            RangeSumQuery.count([(4, 19), (4, 19)]),
        ]
        evaluator = BatchEvaluator(engine)
        for objective in ("l2", "max"):
            last = None
            for step in evaluator.evaluate_progressive(
                queries, objective=objective
            ):
                last = step
            for qi, query in enumerate(queries):
                assert last.estimates[qi] == pytest.approx(
                    engine.evaluate_exact(query)
                )
                assert last.error_bounds[qi] == pytest.approx(0.0, abs=1e-6)
