"""E8 — §3.4/§3.4.2: weighted-SVD similarity recognizes and isolates
variable-length signs over aggregated 28-D streams, where Euclidean / DFT
/ DWT measures are unsuitable.

Two parts:

1. *Isolated-sign classification* under increasingly hostile conditions
   (time warp, imprecise isolation boundaries, sensor noise) — the regime
   §3.4.2 argues alignment-based measures break down in.  Reported:
   accuracy per measure per condition.
2. *Stream isolation*: continuous multi-sign sessions; the recognizer
   must simultaneously isolate and recognize.  Reported: precision /
   recall / F1 of the detections against ground-truth segments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.online.recognizer import (
    RecognizerConfig,
    StreamRecognizer,
    classify_instance,
)
from repro.online.similarity import SIMILARITY_MEASURES
from repro.online.vocabulary import MotionVocabulary
from repro.sensors.asl import ASL_VOCABULARY, synthesize_session, synthesize_sign
from repro.sensors.noise import NoiseModel

from conftest import format_table

CONDITIONS = {
    "easy": dict(noise=0.6, warp=(0.9, 1.1), jitter=0.0),
    "warped": dict(noise=1.0, warp=(0.6, 1.6), jitter=0.3),
    "hostile": dict(noise=2.5, warp=(0.5, 1.8), jitter=0.6),
}
N_TEST = 6


def build_training(rng):
    return {
        spec.name: [synthesize_sign(spec, rng).frames for _ in range(5)]
        for spec in ASL_VOCABULARY
    }


def run_isolated_study():
    rng = np.random.default_rng(8)
    training = build_training(rng)
    vocabulary = MotionVocabulary.from_instances(training)
    templates = {name: mats[0] for name, mats in training.items()}
    accuracies = {}
    rows = []
    for cond_name, cond in CONDITIONS.items():
        test_set = [
            (
                spec.name,
                synthesize_sign(
                    spec, rng,
                    noise=NoiseModel(white_sigma=cond["noise"]),
                    warp_range=cond["warp"],
                    onset_jitter=cond["jitter"],
                ).frames,
            )
            for spec in ASL_VOCABULARY
            for _ in range(N_TEST)
        ]
        row = [cond_name]
        for measure_name, measure in SIMILARITY_MEASURES.items():
            correct = sum(
                1
                for truth, inst in test_set
                if classify_instance(inst, vocabulary, measure, templates)
                == truth
            )
            acc = correct / len(test_set)
            accuracies[(cond_name, measure_name)] = acc
            row.append(f"{acc:.1%}")
        rows.append(row)
    return accuracies, rows


def test_e8_weighted_svd_beats_baselines(emit, benchmark):
    accuracies, rows = benchmark.pedantic(
        run_isolated_study, rounds=1, iterations=1
    )
    emit(
        "E8a_isolated_sign_accuracy",
        format_table(
            ["condition"] + list(SIMILARITY_MEASURES), rows
        ),
    )
    # Weighted SVD stays strong everywhere ...
    for cond in CONDITIONS:
        assert accuracies[(cond, "weighted_svd")] >= 0.85
    # ... and wins (or ties) every baseline under the hostile condition.
    for baseline in ("euclidean", "dft", "dwt"):
        assert (
            accuracies[("hostile", "weighted_svd")]
            >= accuracies[("hostile", baseline)]
        ), f"weighted SVD lost to {baseline} under hostile conditions"
    # At least one baseline visibly degrades while weighted SVD holds.
    worst_baseline = min(
        accuracies[("hostile", b)] for b in ("euclidean", "dft", "dwt")
    )
    assert accuracies[("hostile", "weighted_svd")] >= worst_baseline + 0.05


def run_stream_study():
    rng = np.random.default_rng(88)
    signs = [ASL_VOCABULARY[i] for i in (0, 2, 5, 7, 9)]
    training = {
        s.name: [synthesize_sign(s, rng).frames for _ in range(4)]
        for s in signs
    }
    vocabulary = MotionVocabulary.from_instances(training)

    tp = fp = fn = 0
    n_sessions = 6
    for _ in range(n_sessions):
        order = [signs[i] for i in rng.permutation(len(signs))]
        frames, segments = synthesize_session(order, rng, gap_duration=0.8)
        recognizer = StreamRecognizer(
            vocabulary,
            RecognizerConfig(window=50, compare_every=10,
                             declare_threshold=0.4, decline_steps=3),
        )
        recognizer.calibrate_rest(frames[: segments[0].start])
        detections = recognizer.process(frames)
        matched_segments = set()
        for det in detections:
            hit = None
            for k, seg in enumerate(segments):
                overlaps = det.start < seg.end and seg.start < det.end
                if overlaps and det.name == seg.name and k not in matched_segments:
                    hit = k
                    break
            if hit is None:
                fp += 1
            else:
                matched_segments.add(hit)
                tp += 1
        fn += len(segments) - len(matched_segments)
    precision = tp / max(tp + fp, 1)
    recall = tp / max(tp + fn, 1)
    f1 = 2 * precision * recall / max(precision + recall, 1e-9)
    return precision, recall, f1


def test_e8_stream_isolation(emit, benchmark):
    precision, recall, f1 = benchmark.pedantic(
        run_stream_study, rounds=1, iterations=1
    )
    emit(
        "E8b_stream_isolation",
        format_table(
            ["metric", "value"],
            [["precision", f"{precision:.2f}"],
             ["recall", f"{recall:.2f}"],
             ["F1", f"{f1:.2f}"]],
        ),
    )
    assert recall >= 0.75, f"recall {recall:.2f} too low"
    assert precision >= 0.75, f"precision {precision:.2f} too low"
    assert f1 >= 0.8
