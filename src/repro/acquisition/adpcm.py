"""IMA ADPCM codec — the quantization baseline of §3.1.

The paper's follow-up study [29] "investigated other conventional
compression techniques, such as quantization techniques (e.g., Adaptive
DPCM)" and combined them with the sampling strategies, finding "only
marginal improvement by combining ADPCM with adaptive sampling" —
experiment E2 reproduces that finding with this codec.

This is the standard IMA/DVI ADPCM scheme: 4 bits per sample, a step-size
table walked by a per-sample index adaptation, encoding the *difference*
between consecutive samples.  Signals are scaled into int16 before
encoding, so the codec achieves a fixed 4:1 ratio over 16-bit PCM (8:1
over the 4-byte floats the sampling strategies account in).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import AcquisitionError

__all__ = ["AdpcmCodec", "AdpcmBlock"]

# Standard IMA ADPCM tables.
_STEP_TABLE = np.array([
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
], dtype=np.int64)

_INDEX_TABLE = np.array(
    [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8], dtype=np.int64
)

BITS_PER_CODE = 4


@dataclass
class AdpcmBlock:
    """An encoded channel: 4-bit codes plus the scaling/seed header."""

    codes: np.ndarray  # uint8 array of 4-bit codes
    scale: float  # float -> int16 scaling used
    offset: float  # mean removed before scaling
    seed: int  # first predictor value (int16 domain)

    @property
    def encoded_bytes(self) -> int:
        """Payload size: 4 bits per code plus a 12-byte header."""
        return (self.codes.size * BITS_PER_CODE + 7) // 8 + 12


class AdpcmCodec:
    """Encoder/decoder for one float channel."""

    def encode(self, signal: np.ndarray) -> AdpcmBlock:
        """Encode a 1-D float signal.

        The signal is centred, scaled to span the int16 range, then
        delta-encoded with the IMA step adaptation.
        """
        arr = np.asarray(signal, dtype=float)
        if arr.ndim != 1 or arr.size < 2:
            raise AcquisitionError(
                f"ADPCM needs a 1-D signal of >= 2 samples, got {arr.shape}"
            )
        offset = float(arr.mean())
        peak = float(np.max(np.abs(arr - offset)))
        scale = 30000.0 / peak if peak > 0 else 1.0
        pcm = np.clip((arr - offset) * scale, -32768, 32767).astype(np.int64)

        codes = np.empty(pcm.size - 1, dtype=np.uint8)
        predictor = int(pcm[0])
        index = 0
        for i in range(1, pcm.size):
            diff = int(pcm[i]) - predictor
            step = int(_STEP_TABLE[index])
            code = 0
            if diff < 0:
                code = 8
                diff = -diff
            delta = step >> 3
            if diff >= step:
                code |= 4
                diff -= step
                delta += step
            if diff >= step >> 1:
                code |= 2
                diff -= step >> 1
                delta += step >> 1
            if diff >= step >> 2:
                code |= 1
                delta += step >> 2
            predictor += -delta if code & 8 else delta
            predictor = int(np.clip(predictor, -32768, 32767))
            index = int(np.clip(index + _INDEX_TABLE[code], 0, 88))
            codes[i - 1] = code
        return AdpcmBlock(
            codes=codes, scale=scale, offset=offset, seed=int(pcm[0])
        )

    def decode(self, block: AdpcmBlock) -> np.ndarray:
        """Decode back to a float signal of length ``len(codes) + 1``."""
        out = np.empty(block.codes.size + 1, dtype=np.int64)
        predictor = block.seed
        index = 0
        out[0] = predictor
        for i, code in enumerate(block.codes):
            step = int(_STEP_TABLE[index])
            delta = step >> 3
            if code & 4:
                delta += step
            if code & 2:
                delta += step >> 1
            if code & 1:
                delta += step >> 2
            predictor += -delta if code & 8 else delta
            predictor = int(np.clip(predictor, -32768, 32767))
            index = int(np.clip(index + _INDEX_TABLE[code], 0, 88))
            out[i + 1] = predictor
        return out.astype(float) / block.scale + block.offset

    def encode_matrix(self, session: np.ndarray) -> list[AdpcmBlock]:
        """Encode every column of a ``(frames, sensors)`` session."""
        matrix = np.asarray(session, dtype=float)
        if matrix.ndim != 2:
            raise AcquisitionError(
                f"expected (frames, sensors) matrix, got ndim={matrix.ndim}"
            )
        return [self.encode(matrix[:, s]) for s in range(matrix.shape[1])]

    def decode_matrix(self, blocks: list[AdpcmBlock]) -> np.ndarray:
        """Inverse of :meth:`encode_matrix`."""
        if not blocks:
            raise AcquisitionError("no ADPCM blocks to decode")
        return np.column_stack([self.decode(b) for b in blocks])
