"""The online recognizer: sliding window + weighted SVD + isolation.

This is the §3.4 pipeline assembled: frames arrive one at a time (each
looked at once — the CDS constraint), a sliding window maintains the
sensor-space covariance *incrementally*, the window's eigenstructure is
periodically compared to every vocabulary entry with the weighted-SVD
measure, and the accumulated-evidence heuristic declares isolated,
recognized patterns in real time.

An activity gate keeps rest periods from diluting evidence: windows whose
motion energy sits below ``activity_threshold`` times the calibrated rest
level are skipped (and close out any pending declaration).
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.core.errors import RecognitionError
from repro.obs import counter as obs_counter
from repro.obs import gauge as obs_gauge
from repro.online.incsvd import IncrementalMotionSpectrum
from repro.online.isolation import Detection, EvidenceAccumulator
from repro.online.vocabulary import MotionVocabulary
from repro.streams.sample import Frame

__all__ = ["StreamRecognizer", "classify_instance"]


def classify_instance(
    matrix: np.ndarray,
    vocabulary: MotionVocabulary,
    measure,
    templates: dict[str, np.ndarray] | None = None,
) -> str:
    """Label one isolated motion with the best-matching vocabulary entry.

    Args:
        matrix: The motion, ``(time, sensors)``.
        vocabulary: Known motions.
        measure: ``measure(a, b) -> float`` similarity on motion matrices
            (one of :data:`repro.online.similarity.SIMILARITY_MEASURES`).
        templates: Reference instance per sign for matrix-to-matrix
            measures; required because measures like Euclidean cannot
            consume covariance summaries.

    Returns:
        The winning sign name.
    """
    if templates is None:
        raise RecognitionError(
            "classify_instance needs one template instance per sign"
        )
    missing = [n for n in vocabulary.names() if n not in templates]
    if missing:
        raise RecognitionError(f"templates missing for {missing}")
    scores = {
        name: measure(matrix, templates[name]) for name in vocabulary.names()
    }
    return max(scores, key=scores.get)


@dataclass
class RecognizerConfig:
    """Tunables for :class:`StreamRecognizer`."""

    window: int = 60  # frames in the sliding analysis window
    compare_every: int = 10  # frames between vocabulary comparisons
    declare_threshold: float = 0.6
    decline_steps: int = 4
    activity_threshold: float = 3.0  # x rest energy
    n_components: int = 6  # eigenvectors compared


class StreamRecognizer:
    """Single-pass recognizer over a frame stream."""

    def __init__(
        self,
        vocabulary: MotionVocabulary,
        config: RecognizerConfig | None = None,
        rest_energy: float | None = None,
    ) -> None:
        self.vocabulary = vocabulary
        self.config = config or RecognizerConfig()
        if self.config.window < 4:
            raise RecognitionError("analysis window must hold >= 4 frames")
        if self.config.compare_every < 1:
            raise RecognitionError("compare_every must be >= 1")
        self._spectrum = IncrementalMotionSpectrum(vocabulary.width)
        self._window: deque[np.ndarray] = deque()
        self._accumulator = EvidenceAccumulator(
            vocabulary.names(),
            declare_threshold=self.config.declare_threshold,
            decline_steps=self.config.decline_steps,
        )
        self._rest_energy = rest_energy
        self._rest_mean: np.ndarray | None = None
        self._frames_seen = 0
        # Refractory gate: after a declaration, wait for a rest window
        # before accumulating new evidence, so one long sign's tail cannot
        # re-trigger as a duplicate detection.
        self._armed = True

    def calibrate_rest(self, rest_frames: np.ndarray) -> None:
        """Learn the rest posture and its residual energy.

        Activity is measured as deviation from the rest *posture*, not as
        within-window variance: a sign's static hold phase is quiet in
        variance terms but far from the neutral posture, and must count
        as active.
        """
        arr = np.asarray(rest_frames, dtype=float)
        if arr.ndim != 2 or arr.shape[0] < 2:
            raise RecognitionError(
                f"rest calibration needs (time >= 2, sensors), got {arr.shape}"
            )
        self._rest_mean = arr.mean(axis=0)
        deviations = arr - self._rest_mean[None, :]
        self._rest_energy = float(np.mean(np.sum(deviations**2, axis=1)))

    def _window_energy(self) -> float:
        matrix = np.array(self._window)
        reference = (
            self._rest_mean
            if self._rest_mean is not None
            else np.zeros(matrix.shape[1])
        )
        deviations = matrix - reference[None, :]
        return float(np.mean(np.sum(deviations**2, axis=1)))

    def process(
        self,
        frames: Iterable[Frame | np.ndarray],
        flush_at_end: bool = True,
    ) -> list[Detection]:
        """Consume a stream, returning every declared detection.

        Accepts :class:`Frame` objects or raw value vectors.

        Args:
            frames: The input stream.
            flush_at_end: Close out a still-accumulating pattern when the
                stream terminates (a finite session ends the last sign even
                if no trailing rest was observed).  Pass ``False`` when
                feeding one long stream in chunks.
        """
        if self._rest_energy is None:
            raise RecognitionError(
                "recognizer needs rest calibration; call calibrate_rest() "
                "or pass rest_energy"
            )
        detections: list[Detection] = []
        cfg = self.config
        frames_c = obs_counter("recognizer.frames")
        decisions_c = obs_counter("recognizer.decisions")
        decisions_before = decisions_c.value
        started = time.perf_counter()
        for frame in frames:
            frames_c.inc()
            values = (
                frame.as_array() if isinstance(frame, Frame) else
                np.asarray(frame, dtype=float)
            )
            if values.shape != (self.vocabulary.width,):
                raise RecognitionError(
                    f"frame width {values.shape} != vocabulary width "
                    f"({self.vocabulary.width},)"
                )
            self._window.append(values)
            self._spectrum.add(values)
            if len(self._window) > cfg.window:
                self._spectrum.remove(self._window.popleft())
            self._frames_seen += 1

            if (
                len(self._window) < cfg.window
                or self._frames_seen % cfg.compare_every
            ):
                continue
            if self._window_energy() < cfg.activity_threshold * self._rest_energy:
                # Rest period: close out any pattern still pending, and
                # re-arm the accumulator for the next motion burst.
                pending = self._accumulator.flush(self._frames_seen)
                if pending is not None and self._armed:
                    detections.append(pending)
                self._armed = True
                continue
            if not self._armed:
                continue
            decisions_c.inc()
            values_w, vectors_w = self._spectrum.spectrum()
            sims = {
                entry.name: self.vocabulary.similarity(
                    values_w, vectors_w, entry,
                    n_components=cfg.n_components,
                )
                for entry in self.vocabulary
            }
            detection = self._accumulator.observe(sims, self._frames_seen)
            if detection is not None:
                detections.append(detection)
                self._armed = False
        if flush_at_end:
            pending = self._accumulator.flush(self._frames_seen)
            if pending is not None and self._armed:
                detections.append(pending)
        obs_counter("recognizer.detections").inc(len(detections))
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            # §3.4's real-time constraint, as a live rate: vocabulary
            # comparison rounds (recognition decisions) per second.
            obs_gauge("recognizer.decisions_per_second").set(
                (decisions_c.value - decisions_before) / elapsed
            )
        return detections
