"""Tests for range-sum query definitions and the dense reference evaluator."""

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.query.rangesum import RangeSumQuery, evaluate_on_cube, relation_to_cube


RNG = np.random.default_rng(53)


class TestRangeSumQuery:
    def test_count_constructor(self):
        q = RangeSumQuery.count([(0, 5), (2, 9)])
        assert q.ndim == 2
        assert q.polys == ((1.0,), (1.0,))
        assert q.max_degree == 0

    def test_weighted_constructor(self):
        q = RangeSumQuery.weighted([(0, 5), (0, 5)], {1: 2})
        assert q.polys == ((1.0,), (0.0, 0.0, 1.0))
        assert q.max_degree == 2

    def test_cross_term(self):
        q = RangeSumQuery.weighted([(0, 3), (0, 3)], {0: 1, 1: 1})
        assert q.polys == ((0.0, 1.0), (0.0, 1.0))

    def test_empty_range_detection(self):
        assert RangeSumQuery.count([(5, 4)]).is_empty()
        assert not RangeSumQuery.count([(4, 4)]).is_empty()

    def test_validation(self):
        with pytest.raises(QueryError):
            RangeSumQuery(ranges=())
        with pytest.raises(QueryError):
            RangeSumQuery(ranges=((0, 3),), polys=((1.0,), (1.0,)))
        with pytest.raises(QueryError):
            RangeSumQuery(ranges=((-1, 3),))
        with pytest.raises(QueryError):
            RangeSumQuery(ranges=((0, 3),), polys=((),))
        with pytest.raises(QueryError):
            RangeSumQuery.weighted([(0, 3)], {0: -1})


class TestDenseEvaluation:
    def test_count(self):
        cube = np.ones((4, 4))
        q = RangeSumQuery.count([(1, 2), (0, 3)])
        assert evaluate_on_cube(cube, q) == pytest.approx(8.0)

    def test_weighted_sum(self):
        cube = np.ones((4,))
        q = RangeSumQuery.weighted([(1, 3)], {0: 1})
        assert evaluate_on_cube(cube, q) == pytest.approx(1 + 2 + 3)

    def test_quadratic_measure(self):
        cube = np.ones(8)
        q = RangeSumQuery.weighted([(0, 3)], {0: 2})
        assert evaluate_on_cube(cube, q) == pytest.approx(0 + 1 + 4 + 9)

    def test_separable_2d(self):
        cube = RNG.normal(size=(8, 8))
        q = RangeSumQuery.weighted([(1, 4), (2, 6)], {0: 1})
        expected = 0.0
        for i in range(1, 5):
            for j in range(2, 7):
                expected += i * cube[i, j]
        assert evaluate_on_cube(cube, q) == pytest.approx(expected)

    def test_empty_range_is_zero(self):
        assert evaluate_on_cube(np.ones((4,)), RangeSumQuery.count([(3, 1)])) == 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(QueryError):
            evaluate_on_cube(np.ones((4, 4)), RangeSumQuery.count([(0, 3)]))

    def test_range_exceeds_cube(self):
        with pytest.raises(QueryError):
            evaluate_on_cube(np.ones(4), RangeSumQuery.count([(0, 4)]))


class TestRelationToCube:
    def test_counts(self):
        rows = np.array([[0, 1], [0, 1], [2, 3]])
        cube = relation_to_cube(rows, (3, 4))
        assert cube[0, 1] == 2.0
        assert cube[2, 3] == 1.0
        assert cube.sum() == 3.0

    def test_count_query_equals_matching_rows(self):
        rows = RNG.integers(0, 8, size=(200, 2))
        cube = relation_to_cube(rows, (8, 8))
        q = RangeSumQuery.count([(2, 5), (0, 7)])
        matching = np.sum((rows[:, 0] >= 2) & (rows[:, 0] <= 5))
        assert evaluate_on_cube(cube, q) == pytest.approx(float(matching))

    def test_sum_query_equals_attribute_sum(self):
        rows = RNG.integers(0, 8, size=(200, 2))
        cube = relation_to_cube(rows, (8, 8))
        q = RangeSumQuery.weighted([(0, 7), (0, 7)], {1: 1})
        assert evaluate_on_cube(cube, q) == pytest.approx(float(rows[:, 1].sum()))

    def test_validation(self):
        with pytest.raises(QueryError):
            relation_to_cube(np.zeros((3, 2), dtype=int), (4,))
        with pytest.raises(QueryError):
            relation_to_cube(np.array([[-1, 0]]), (4, 4))
        with pytest.raises(QueryError):
            relation_to_cube(np.array([[5, 0]]), (4, 4))
