"""A simulated block device with I/O accounting.

The storage claims of §3.2 are all statements about *which coefficients
share a disk block* and *how many blocks a query touches* — never about a
specific device.  This simulator therefore models exactly that: fixed-size
blocks addressed by id, with read/write counters that every experiment
reads its I/O costs from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.core.errors import StorageError

__all__ = ["IOStats", "SimulatedDisk"]


@dataclass
class IOStats:
    """Counters for one device (or one measurement interval)."""

    reads: int = 0
    writes: int = 0

    def reset(self) -> None:
        """Zero the counters."""
        self.reads = 0
        self.writes = 0

    def snapshot(self) -> "IOStats":
        """A copy for before/after differencing."""
        return IOStats(reads=self.reads, writes=self.writes)

    def delta(self, before: "IOStats") -> "IOStats":
        """I/O performed since ``before`` was snapshotted."""
        return IOStats(
            reads=self.reads - before.reads, writes=self.writes - before.writes
        )


@dataclass
class SimulatedDisk:
    """Block device: block id -> payload dictionary.

    Payloads are dictionaries from item key (e.g. flat coefficient index)
    to value; ``block_size`` bounds how many items one block may carry,
    mirroring a real device's fixed block capacity.
    """

    block_size: int
    _blocks: dict[Hashable, dict] = field(default_factory=dict)
    stats: IOStats = field(default_factory=IOStats)

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise StorageError(
                f"block size must be positive, got {self.block_size}"
            )

    def __len__(self) -> int:
        return len(self._blocks)

    def write_block(self, block_id: Hashable, items: dict) -> None:
        """Store (or overwrite) one block."""
        if len(items) > self.block_size:
            raise StorageError(
                f"block {block_id!r}: {len(items)} items exceed "
                f"block size {self.block_size}"
            )
        self._blocks[block_id] = dict(items)
        self.stats.writes += 1

    def read_block(self, block_id: Hashable) -> dict:
        """Fetch one block, counting the I/O."""
        try:
            block = self._blocks[block_id]
        except KeyError:
            raise StorageError(f"no such block {block_id!r}") from None
        self.stats.reads += 1
        return dict(block)

    def has_block(self, block_id: Hashable) -> bool:
        """Existence check (no I/O charged — directory metadata)."""
        return block_id in self._blocks

    def block_ids(self) -> list[Hashable]:
        """All allocated block ids (no I/O charged)."""
        return list(self._blocks)

    def occupancy(self) -> float:
        """Mean fraction of block capacity in use."""
        if not self._blocks:
            return 0.0
        used = sum(len(b) for b in self._blocks.values())
        return used / (len(self._blocks) * self.block_size)
