"""The sharded block store: placement, fan-out, equivalence, degradation.

The acceptance bar for sharding is *transparency*: a sharded stack must
be indistinguishable from an unsharded one at the query interface —
``evaluate_exact`` bitwise-identical for any shard count — while one
failed shard degrades only itself.
"""

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.faults import CircuitBreaker, FaultPlan, RetryPolicy
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery
from repro.storage.device import StorageSpec
from repro.storage.disk import SimulatedDisk
from repro.storage.sharding import ShardedDevice, place


def build_sharded(n_shards, block_size=8, **kwargs):
    return ShardedDevice(
        [SimulatedDisk(block_size=block_size) for _ in range(n_shards)],
        **kwargs,
    )


class TestPlacement:
    def test_every_block_lands_on_exactly_one_shard(self):
        ids = list(range(200)) + [(i, j) for i in range(10)
                                  for j in range(10)]
        for n in (1, 2, 3, 4, 7):
            for block_id in ids:
                assert 0 <= place(block_id, n) < n

    def test_placement_is_deterministic_across_runs(self):
        # Hard-coded expectations: the CRC32-of-repr placement must be
        # stable across processes, machines and Python versions — a
        # placement change would orphan every block already stored.
        assert {b: place(b, 2) for b in (0, 1, 2, 3, 42)} == \
            {0: 1, 1: 1, 2: 1, 3: 1, 42: 0}
        assert {b: place(b, 4) for b in (0, 1, 2, 3, 42)} == \
            {0: 1, 1: 3, 2: 1, 3: 3, 42: 0}
        assert place((0, 0), 4) == 3
        assert place((1, 2), 4) == 1
        assert place((3, 1), 4) == 2
        assert place("blob", 4) == 0

    def test_placement_spreads_blocks(self):
        counts = [0, 0, 0, 0]
        for b in range(400):
            counts[place(b, 4)] += 1
        assert min(counts) > 0  # no empty shard over a real id range

    def test_sharded_device_routes_by_placement(self):
        dev = build_sharded(4)
        for b in range(32):
            dev.write_block(b, {b: float(b)})
        for b in range(32):
            shard = dev.shard_of(b)
            assert shard == place(b, 4)
            for i, inner in enumerate(dev.devices):
                assert inner.has_block(b) == (i == shard)


class TestShardedDevice:
    def test_reads_and_bulk_reads_round_trip(self):
        dev = build_sharded(3)
        blocks = {b: {b: float(b) * 1.5} for b in range(24)}
        for b, items in blocks.items():
            dev.write_block(b, items)
        for b, items in blocks.items():
            assert dev.read_block(b) == items
        assert dev.read_many(list(blocks)) == blocks
        assert dev.n_blocks() == 24
        assert len(dev) == 24

    def test_sequential_fanout_matches_concurrent(self):
        ids = list(range(24))
        blocks = {b: {b: float(b)} for b in ids}
        wide, narrow = build_sharded(4), build_sharded(4, fanout_workers=1)
        for b, items in blocks.items():
            wide.write_block(b, items)
            narrow.write_block(b, items)
        assert wide.read_many(ids) == narrow.read_many(ids) == blocks

    def test_io_totals_sum_across_shards(self):
        dev = build_sharded(4)
        for b in range(16):
            dev.write_block(b, {b: 0.0})
        dev.read_many(list(range(16)))
        totals = dev.io_totals()
        assert totals.reads == 16
        assert totals.writes == 16
        per_shard = [d.io.reads for d in dev.devices]
        assert sum(per_shard) == 16

    def test_stats_aggregate_per_shard(self):
        dev = build_sharded(2)
        dev.write_block(0, {0: 1.0})
        stats = dev.stats()
        assert stats["layer"] == "sharded"
        assert stats["shards"] == 2
        assert len(stats["per_shard"]) == 2

    def test_validation(self):
        with pytest.raises(StorageError):
            ShardedDevice([])
        with pytest.raises(StorageError):
            ShardedDevice([SimulatedDisk(block_size=4),
                           SimulatedDisk(block_size=8)])
        with pytest.raises(StorageError):
            build_sharded(2, fanout_workers=0)


class _OkShard:
    """Minimal read-only shard double."""

    block_size = 8

    def read_many(self, ids):
        return {b: {b: 1.0} for b in ids}


class _FailingShard:
    block_size = 8

    def __init__(self, label):
        self.label = label

    def read_many(self, ids):
        raise StorageError(f"{self.label} is down")


class TestFanoutPoolLifecycle:
    def test_pool_persists_across_read_many_calls(self):
        # Regression: read_many used to build (and tear down) a fresh
        # ThreadPoolExecutor on every call — the hottest I/O path paid
        # thread startup each time.  The pool must now be created once
        # and reused.
        dev = build_sharded(4)
        for b in range(16):
            dev.write_block(b, {b: 0.0})
        dev.read_many(list(range(16)))
        pool = dev._pool
        assert pool is not None
        dev.read_many(list(range(16)))
        assert dev._pool is pool

    def test_close_shuts_the_pool_down_idempotently(self):
        dev = build_sharded(4)
        for b in range(8):
            dev.write_block(b, {b: 0.0})
        dev.read_many(list(range(8)))
        dev.close()
        assert dev._pool is None
        dev.close()  # second close is a no-op
        # The device still works afterwards; the pool is rebuilt lazily.
        assert dev.read_many(list(range(8))) == {
            b: {b: 0.0} for b in range(8)
        }


class TestMultiShardFailureAggregation:
    def test_second_failed_shard_lands_in_notes(self):
        # Regression: read_many used to surface only the first failed
        # shard group, silently reporting a multi-shard outage as a
        # single-shard one.  Placement (pinned above): block 0 -> shard
        # 1, block 1 -> shard 3, block 42 -> shard 0.
        dev = ShardedDevice(
            [_OkShard(), _FailingShard("shard-one"),
             _OkShard(), _FailingShard("shard-three")]
        )
        with pytest.raises(StorageError) as excinfo:
            dev.read_many([0, 1, 42])
        assert "shard-one is down" in str(excinfo.value)
        notes = getattr(excinfo.value, "__notes__", [])
        assert any(
            "shard 3" in note and "shard-three is down" in note
            for note in notes
        )

    def test_single_failed_shard_has_no_notes(self):
        dev = ShardedDevice(
            [_OkShard(), _FailingShard("shard-one"), _OkShard(), _OkShard()]
        )
        with pytest.raises(StorageError) as excinfo:
            dev.read_many([0, 1, 42])
        assert getattr(excinfo.value, "__notes__", []) == []

    def test_surviving_shards_are_not_interrupted(self):
        # The failure is raised only after every group settles: the OK
        # shards' reads complete (observable via a recording double).
        calls = []

        class _Recording(_OkShard):
            def read_many(self, ids):
                calls.append(list(ids))
                return super().read_many(ids)

        dev = ShardedDevice(
            [_Recording(), _FailingShard("shard-one"),
             _Recording(), _Recording()]
        )
        with pytest.raises(StorageError):
            dev.read_many([0, 1, 42])
        assert [42] in calls  # shard 0's group ran to completion


class TestShardedQueriesAreBitwiseEqual:
    def make_engine(self, shards):
        rng = np.random.default_rng(2003)
        cube = rng.poisson(3.0, (32, 32)).astype(float)
        return ProPolyneEngine(
            cube, max_degree=1, block_size=7,
            storage=StorageSpec(shards=shards, cache_blocks=8),
        )

    def test_exact_answers_identical_for_1_2_4_shards(self):
        queries = [
            RangeSumQuery.count([(3, 29), (4, 30)]),
            RangeSumQuery.weighted([(0, 31), (8, 23)], {0: 1}),
            RangeSumQuery.weighted([(5, 20), (5, 20)], {0: 1, 1: 1}),
        ]
        engines = {n: self.make_engine(n) for n in (1, 2, 4)}
        for query in queries:
            answers = {n: e.evaluate_exact(query)
                       for n, e in engines.items()}
            # Bitwise equality, not approx: sharding must not change
            # the arithmetic, only where the blocks live.
            assert answers[1] == answers[2] == answers[4]

    def test_progressive_converges_identically(self):
        query = RangeSumQuery.count([(3, 29), (4, 30)])
        finals = {}
        for n in (1, 2, 4):
            steps = list(self.make_engine(n).evaluate_progressive(query))
            finals[n] = steps[-1].estimate
        assert finals[1] == finals[2] == finals[4]


class TestPerShardDegradation:
    def make_stormy(self, fault_shards=(1,), recovery_timeout_s=60.0):
        rng = np.random.default_rng(7)
        cube = rng.poisson(3.0, (32, 32)).astype(float)
        return ProPolyneEngine(
            cube, max_degree=1, block_size=7,
            storage=StorageSpec(
                shards=4,
                fault_plan=FaultPlan(seed=3, read_error_rate=1.0),
                fault_shards=fault_shards,
                retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0,
                                         budget_s=0.0),
                breaker=CircuitBreaker(failure_threshold=1,
                                       recovery_timeout_s=recovery_timeout_s),
            ),
        )

    def test_one_dead_shard_trips_only_its_breaker(self):
        engine = self.make_stormy()
        query = RangeSumQuery.count([(2, 28), (3, 29)])
        truth = None
        outcome = engine.evaluate_degradable(query)
        assert outcome.degraded is True
        assert outcome.reason == "storage_unavailable"
        assert outcome.blocks_skipped > 0
        assert outcome.blocks_read > 0  # survivors answered
        states = [b.state for b in engine.store.breakers]
        assert states[1] == "open"
        assert all(s == "closed" for i, s in enumerate(states) if i != 1)
        # The survivors' answer stays inside the guaranteed bound.
        clean = ProPolyneEngine(
            np.random.default_rng(7).poisson(3.0, (32, 32)).astype(float),
            max_degree=1, block_size=7,
        )
        truth = clean.evaluate_exact(query)
        assert abs(outcome.value - truth) <= outcome.error_bound + 1e-9

    def test_no_unhandled_exceptions_across_repeated_queries(self):
        engine = self.make_stormy()
        query = RangeSumQuery.count([(2, 28), (3, 29)])
        for _ in range(5):
            outcome = engine.evaluate_degradable(query)
            assert outcome.degraded is True

    def test_healing_restores_exact_answers(self):
        import time

        engine = self.make_stormy(recovery_timeout_s=0.01)
        query = RangeSumQuery.count([(2, 28), (3, 29)])
        assert engine.evaluate_degradable(query).degraded is True
        engine.store.set_injecting(False)
        time.sleep(0.02)  # past the recovery timeout: probes allowed
        healed = engine.evaluate_degradable(query)
        assert healed.degraded is False
        assert healed.blocks_skipped == 0


class TestShardAwareScanStats:
    def test_coordinator_counts_fetches_per_shard(self):
        from repro.query.service import QueryService

        rng = np.random.default_rng(11)
        cube = rng.poisson(3.0, (32, 32)).astype(float)
        engine = ProPolyneEngine(
            cube, max_degree=1, block_size=7,
            storage=StorageSpec(shards=4, cache_blocks=8),
        )
        queries = [RangeSumQuery.count([(2, 28), (3, 29)]),
                   RangeSumQuery.count([(0, 15), (0, 15)])]
        with QueryService(engine, workers=2) as service:
            service.run_exact(queries)
            stats = service.scan_stats()
        by_shard = stats["fetches_by_shard"]
        assert sum(by_shard.values()) == stats["fetches"]
        assert all(shard in range(4) for shard in by_shard)
