"""Stateless cluster frontend: routing, quotas, admission — no data.

The Murder architecture's frontends F1..Fn hold *no* user data: any
frontend, given the same backend membership, computes the same routing
table (the deterministic :class:`~repro.cluster.ring.HashRing`) and
proxies requests to the data-owning backend.  Everything a
:class:`ClusterFrontend` keeps is reconstructible bookkeeping — the
ring, the backend handles, per-tenant quota settings and in-flight
counts — which is what makes the tier horizontally scalable: add
frontends freely, kill any of them harmlessly.

Statelessness is enforced *by construction*: the
``layering-cluster-boundary`` lint rule forbids this module from
constructing engines, query/ingest services or backend nodes.  The
frontend can only route to backends it was handed.

Admission is layered: the frontend's per-tenant quota (greedy tenants
rejected with :class:`QuotaExceeded` before their work touches a
backend) sits above each namespace service's bounded queue
(:class:`~repro.query.service.QueryRejected`) which sits above the
storage breakers.  A flooding tenant therefore burns its own quota and
its own namespace queue — other tenants' latency stays bounded, the
isolation property ``bench_p8_cluster.py`` gates on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import AIMSError
from repro.lint.lockwatch import watched_lock
from repro.obs import counter as obs_counter
from repro.obs import gauge as obs_gauge
from repro.query.service import QueryRejected

from repro.cluster.ring import HashRing

__all__ = [
    "ClusterFrontend",
    "QuotaExceeded",
    "TenantQuota",
    "namespace_key",
]


def namespace_key(tenant: str, dataset: str) -> str:
    """The routing key of a tenant's dataset: ``tenant/dataset``.

    One string, hashed whole by the ring — so a tenant's datasets
    spread over backends independently (no tenant-sized hot node) while
    each dataset has exactly one home.
    """
    if "/" in tenant:
        raise AIMSError(f"tenant names cannot contain '/': {tenant!r}")
    return f"{tenant}/{dataset}"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits enforced at the frontend.

    Attributes:
        max_inflight: Queries a tenant may have in flight (submitted,
            not yet resolved) across all its datasets.  The quota is
            per-frontend: with F frontends a tenant can hold up to
            ``F * max_inflight`` — size accordingly.
    """

    max_inflight: int = 64

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise AIMSError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )


class QuotaExceeded(QueryRejected):
    """The tenant is at its in-flight quota; the query was not routed."""


class ClusterFrontend:
    """Stateless router over data-owning :class:`BackendNode`\\ s.

    Args:
        backends: The backend nodes to route over (handles constructed
            elsewhere — this class never builds one).
        vnodes: Virtual nodes per backend on the consistent-hash ring.
        default_quota: Quota applied to tenants without an explicit
            :meth:`set_quota`; ``None`` = unlimited.
    """

    def __init__(self, backends, vnodes: int = 64,
                 default_quota: TenantQuota | None = None) -> None:
        self._backends = {}
        for backend in backends:
            if backend.node_id in self._backends:
                raise AIMSError(
                    f"duplicate backend node_id {backend.node_id!r}"
                )
            self._backends[backend.node_id] = backend
        if not self._backends:
            raise AIMSError("a cluster frontend needs at least one backend")
        self.ring = HashRing(self._backends, vnodes=vnodes)
        self.default_quota = default_quota
        self._quotas: dict[str, TenantQuota] = {}
        self._inflight: dict[str, int] = {}
        self._lock = watched_lock("cluster.frontend")
        obs_gauge("cluster.frontend.backends").set(len(self._backends))

    # -- membership ----------------------------------------------------

    def add_backend(self, backend) -> None:
        """Join a backend; only ≈ ``keys/n`` namespaces remap to it
        (consistent hashing), and remapped namespaces must be
        re-populated on their new home — the ring moves *routing*, not
        data."""
        if backend.node_id in self._backends:
            raise AIMSError(
                f"backend {backend.node_id!r} already registered"
            )
        self._backends[backend.node_id] = backend
        self.ring.add(backend.node_id)
        obs_gauge("cluster.frontend.backends").set(len(self._backends))

    def remove_backend(self, node_id: str):
        """Leave a backend (returns its handle; the caller owns closing
        it).  Only the namespaces it owned remap."""
        if node_id not in self._backends:
            raise AIMSError(f"no backend {node_id!r} registered")
        self.ring.remove(node_id)
        backend = self._backends.pop(node_id)
        obs_gauge("cluster.frontend.backends").set(len(self._backends))
        return backend

    def backends(self) -> list[str]:
        """Registered backend ids (sorted)."""
        return sorted(self._backends)

    def route(self, tenant: str, dataset: str):
        """The backend owning a tenant's dataset (pure ring lookup)."""
        node_id = self.ring.lookup(namespace_key(tenant, dataset))
        obs_counter("cluster.frontend.routed").inc()
        return self._backends[node_id]

    # -- quotas --------------------------------------------------------

    def set_quota(self, tenant: str, quota: TenantQuota | None) -> None:
        """Set (or with ``None`` clear) a tenant's explicit quota."""
        with self._lock:
            if quota is None:
                self._quotas.pop(tenant, None)
            else:
                self._quotas[tenant] = quota

    def inflight(self, tenant: str) -> int:
        """The tenant's current in-flight query count (this frontend)."""
        with self._lock:
            return self._inflight.get(tenant, 0)

    def _acquire(self, tenant: str) -> None:
        with self._lock:
            quota = self._quotas.get(tenant, self.default_quota)
            count = self._inflight.get(tenant, 0)
            if quota is not None and count >= quota.max_inflight:
                obs_counter("cluster.frontend.quota_rejected").inc()
                raise QuotaExceeded(
                    f"tenant {tenant!r} at quota "
                    f"({quota.max_inflight} in flight); retry later"
                )
            self._inflight[tenant] = count + 1

    def _release(self, tenant: str) -> None:
        with self._lock:
            count = self._inflight.get(tenant, 1) - 1
            if count <= 0:
                self._inflight.pop(tenant, None)
            else:
                self._inflight[tenant] = count

    def _routed_submit(self, tenant: str, submit):
        """Quota-guard one submission: acquire before routing, release
        when the future resolves (or the submission itself fails)."""
        self._acquire(tenant)
        try:
            future = submit()
        except BaseException:
            self._release(tenant)
            raise
        future.add_done_callback(lambda _f: self._release(tenant))
        return future

    # -- query path ----------------------------------------------------

    def populate(self, tenant: str, dataset: str, cube, storage=None):
        """Populate a tenant's dataset on its ring-assigned backend."""
        namespace = namespace_key(tenant, dataset)
        return self.route(tenant, dataset).populate(
            namespace, cube, storage=storage
        )

    def submit_exact(self, tenant: str, dataset: str, query,
                     block: bool = False, as_of: int | None = None):
        """Route an exact range-sum; the future resolves to its value."""
        return self._routed_submit(
            tenant,
            lambda: self.route(tenant, dataset).submit_exact(
                namespace_key(tenant, dataset), query, block=block,
                as_of=as_of,
            ),
        )

    def submit_degradable(self, tenant: str, dataset: str, query,
                          block: bool = False,
                          deadline_s: float | None = None,
                          importance: str = "l2",
                          as_of: int | None = None):
        """Route a degradation-aware query; resolves to a
        :class:`~repro.query.propolyne.QueryOutcome`."""
        return self._routed_submit(
            tenant,
            lambda: self.route(tenant, dataset).submit_degradable(
                namespace_key(tenant, dataset), query, block=block,
                deadline_s=deadline_s, importance=importance, as_of=as_of,
            ),
        )

    def submit_batch(self, tenant: str, dataset: str, queries,
                     block: bool = False):
        """Route a whole batch as one backend task (one quota slot)."""
        return self._routed_submit(
            tenant,
            lambda: self.route(tenant, dataset).submit_batch(
                namespace_key(tenant, dataset), queries, block=block
            ),
        )

    def open_session(self, tenant: str, dataset: str, session_id: str,
                     sampler, to_point, weight_of=None):
        """Route an ingest session to the dataset's backend (sessions
        are long-lived; they do not consume query quota)."""
        return self.route(tenant, dataset).open_session(
            namespace_key(tenant, dataset), session_id, sampler,
            to_point, weight_of,
        )

    def engine(self, tenant: str, dataset: str):
        """The owning backend's engine for a dataset (updates go here)."""
        return self.route(tenant, dataset).engine(
            namespace_key(tenant, dataset)
        )

    # -- introspection / lifecycle -------------------------------------

    def stats(self) -> dict:
        """Routing table, quota state, and every backend's counters."""
        with self._lock:
            inflight = dict(self._inflight)
            quotas = {
                tenant: quota.max_inflight
                for tenant, quota in self._quotas.items()
            }
        return {
            "backends": self.backends(),
            "vnodes": self.ring.vnodes,
            "inflight": inflight,
            "quotas": quotas,
            "default_quota": (
                self.default_quota.max_inflight
                if self.default_quota is not None
                else None
            ),
            "per_backend": {
                node_id: backend.stats()
                for node_id, backend in sorted(self._backends.items())
            },
        }

    def close(self) -> None:
        """Close every registered backend (explicit whole-cluster
        teardown; removing a single backend hands its handle back
        instead)."""
        for backend in self._backends.values():
            backend.close()

    def __enter__(self) -> "ClusterFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
