"""Tests for the wavelet packet transform (repro.wavelets.packet)."""

import numpy as np
import pytest

from repro.core.errors import TransformError
from repro.wavelets.packet import (
    basis_reconstruct,
    basis_transform,
    best_basis,
    shannon_cost,
    wavelet_packet_decompose,
)


RNG = np.random.default_rng(11)


class TestDecomposition:
    def test_tree_shape(self):
        tree = wavelet_packet_decompose(RNG.normal(size=32), "haar", max_level=3)
        # Root + 2 + 4 + 8 nodes.
        assert len(tree) == 1 + 2 + 4 + 8
        assert tree["aa"].data.size == 8
        assert tree["dd"].level == 2

    def test_left_spine_is_dwt(self):
        """The repeated-approx path must equal the plain DWT cascade."""
        from repro.wavelets.dwt import wavedec

        x = RNG.normal(size=64)
        tree = wavelet_packet_decompose(x, "db2", max_level=3)
        coeffs = wavedec(x, "db2", levels=3)
        np.testing.assert_allclose(tree["aaa"].data, coeffs.approx, atol=1e-10)
        np.testing.assert_allclose(
            tree["aad"].data, coeffs.details[0], atol=1e-10
        )

    def test_energy_preserved_per_level(self):
        x = RNG.normal(size=64)
        tree = wavelet_packet_decompose(x, "db3", max_level=2)
        level2 = [tree[p].data for p in ("aa", "ad", "da", "dd")]
        energy = sum(float(np.dot(v, v)) for v in level2)
        assert energy == pytest.approx(float(np.dot(x, x)))

    def test_too_short_signal(self):
        with pytest.raises(TransformError):
            wavelet_packet_decompose(np.ones(2), "db4")


class TestBestBasis:
    def test_cover_is_complete_and_disjoint(self):
        x = RNG.normal(size=64)
        tree = wavelet_packet_decompose(x, "db2", max_level=4)
        basis = best_basis(tree)
        # A complete disjoint cover satisfies sum(2^-len(path)) == 1.
        assert sum(2.0 ** -len(p) for p in basis) == pytest.approx(1.0)
        for a in basis:
            for b in basis:
                if a != b:
                    assert not b.startswith(a), f"{a} covers {b}"

    def test_sinusoid_prefers_deep_packets(self):
        """A pure tone concentrates in frequency, so the best basis should
        split deeper than the root on at least one branch."""
        t = np.arange(256)
        x = np.sin(2 * np.pi * 37 * t / 256)
        tree = wavelet_packet_decompose(x, "db4", max_level=4)
        basis = best_basis(tree)
        assert any(len(p) >= 2 for p in basis)

    def test_cost_of_basis_not_worse_than_dwt_cover(self):
        x = RNG.normal(size=128) ** 3
        tree = wavelet_packet_decompose(x, "db2", max_level=4)
        basis = best_basis(tree)
        best_cost = sum(shannon_cost(tree[p].data) for p in basis)
        dwt_cover = ["aaaa", "aaad", "aad", "ad", "d"]
        dwt_cost = sum(shannon_cost(tree[p].data) for p in dwt_cover)
        assert best_cost <= dwt_cost + 1e-9

    def test_missing_root_rejected(self):
        with pytest.raises(TransformError):
            best_basis({})


class TestReconstruction:
    @pytest.mark.parametrize("wavelet", ["haar", "db2"])
    def test_best_basis_roundtrip(self, wavelet):
        x = RNG.normal(size=64)
        tree = wavelet_packet_decompose(x, wavelet, max_level=3)
        basis = best_basis(tree)
        coeffs = basis_transform(tree, basis)
        np.testing.assert_allclose(
            basis_reconstruct(coeffs, wavelet), x, atol=1e-9
        )

    def test_full_depth_roundtrip(self):
        x = RNG.normal(size=32)
        tree = wavelet_packet_decompose(x, "haar", max_level=5)
        leaves = {p: tree[p].data for p in tree if len(p) == 5}
        np.testing.assert_allclose(
            basis_reconstruct(leaves, "haar"), x, atol=1e-9
        )

    def test_incomplete_cover_rejected(self):
        x = RNG.normal(size=16)
        tree = wavelet_packet_decompose(x, "haar", max_level=2)
        with pytest.raises(TransformError):
            basis_reconstruct({"aa": tree["aa"].data, "d": tree["d"].data})

    def test_unknown_basis_path(self):
        x = RNG.normal(size=16)
        tree = wavelet_packet_decompose(x, "haar", max_level=2)
        with pytest.raises(TransformError):
            basis_transform(tree, ["zz"])

    def test_empty_reconstruct_rejected(self):
        with pytest.raises(TransformError):
            basis_reconstruct({})


class TestShannonCost:
    def test_zero_vector(self):
        assert shannon_cost(np.zeros(8)) == 0.0

    def test_concentration_is_cheaper(self):
        spread = np.full(4, 0.5)  # unit energy, maximally spread
        spike = np.array([1.0, 0.0, 0.0, 0.0])  # unit energy, concentrated
        assert shannon_cost(spike) < shannon_cost(spread)
