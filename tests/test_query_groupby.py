"""Tests for the SQL-style group-by surface and joint best basis."""

import numpy as np
import pytest

from repro.core.errors import QueryError, TransformError
from repro.query.batch import group_by
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery, evaluate_on_cube
from repro.wavelets.packet import best_basis, joint_best_basis, wavelet_packet_decompose


RNG = np.random.default_rng(171)


@pytest.fixture(scope="module")
def cube():
    return np.abs(RNG.normal(size=(32, 32))) + 0.1


@pytest.fixture(scope="module")
def engine(cube):
    return ProPolyneEngine(cube, max_degree=1, block_size=7)


class TestGroupBy:
    def test_values_match_dense(self, cube, engine):
        result = group_by(engine, dim=0, group_width=8)
        assert len(result.labels) == 4
        for (lo, hi), value in result.as_dict().items():
            want = evaluate_on_cube(
                cube, RangeSumQuery.count([(lo, hi), (0, 31)])
            )
            assert value == pytest.approx(want)

    def test_cells_partition_total(self, cube, engine):
        result = group_by(engine, dim=1, group_width=4)
        assert sum(result.values) == pytest.approx(float(cube.sum()))

    def test_other_ranges_respected(self, cube, engine):
        result = group_by(
            engine, dim=0, group_width=16, other_ranges={1: (5, 10)}
        )
        for (lo, hi), value in result.as_dict().items():
            want = evaluate_on_cube(
                cube, RangeSumQuery.count([(lo, hi), (5, 10)])
            )
            assert value == pytest.approx(want)

    def test_weighted_measure(self, cube, engine):
        result = group_by(engine, dim=0, group_width=16, degrees={1: 1})
        for (lo, hi), value in result.as_dict().items():
            want = evaluate_on_cube(
                cube, RangeSumQuery.weighted([(lo, hi), (0, 31)], {1: 1})
            )
            assert value == pytest.approx(want)

    def test_io_saving_positive(self, engine):
        result = group_by(engine, dim=0, group_width=4)
        assert result.blocks_read < result.blocks_independent
        assert 0.0 < result.io_saving < 1.0

    def test_ragged_last_cell(self, engine):
        result = group_by(engine, dim=0, group_width=12)
        assert result.labels[-1] == (24, 31)

    def test_validation(self, engine):
        with pytest.raises(QueryError):
            group_by(engine, dim=2, group_width=4)
        with pytest.raises(QueryError):
            group_by(engine, dim=0, group_width=0)
        with pytest.raises(QueryError):
            group_by(engine, dim=0, group_width=4, other_ranges={0: (0, 1)})


class TestJointBestBasis:
    def test_single_signal_matches_best_basis(self):
        x = RNG.normal(size=64)
        tree = wavelet_packet_decompose(x, "db2")
        assert joint_best_basis([x], "db2") == best_basis(tree)

    def test_cover_is_complete(self):
        signals = [RNG.normal(size=64) for _ in range(5)]
        cover = joint_best_basis(signals, "db2")
        assert sum(2.0 ** -len(p) for p in cover) == pytest.approx(1.0)

    def test_shared_tone_goes_deep(self):
        t = np.arange(128)
        tone = np.sin(2 * np.pi * 30 * t / 128)
        signals = [
            a * tone + 0.01 * RNG.normal(size=128) for a in (1.0, -0.5, 2.0)
        ]
        cover = joint_best_basis(signals, "db4")
        assert any(len(p) >= 2 for p in cover)

    def test_validation(self):
        with pytest.raises(TransformError):
            joint_best_basis([], "db2")
        with pytest.raises(TransformError):
            joint_best_basis([np.ones(8), np.ones(16)], "haar")
