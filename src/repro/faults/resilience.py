"""The resilience stack: retry + circuit breaker around one operation.

:class:`ResilientCaller` is what the device stack's
:class:`~repro.storage.device.ResilientDevice` layer threads reads
through: the breaker decides whether the call may run at all, the retry
policy absorbs transient faults, and every terminal failure comes out
as one typed :class:`~repro.core.errors.StorageUnavailable` — the
signal the query layer degrades on.  Fault flow::

    FaultyDevice ──(transient error)──► RetryPolicy ──(budget spent)──┐
                                                                    ▼
    caller ◄──(StorageUnavailable)── CircuitBreaker ◄── record_failure

With neither a policy nor a breaker configured the caller is a plain
pass-through, adding nothing to the no-fault hot path.
"""

from __future__ import annotations

from repro.core.errors import StorageUnavailable
from repro.faults.breaker import CircuitBreaker
from repro.faults.retry import TRANSIENT_ERRORS, RetryPolicy

__all__ = ["ResilientCaller"]


class ResilientCaller:
    """Guard one callable with retries and a circuit breaker.

    The breaker counts whole *operations* (a read plus all its
    retries), not individual attempts: a read that recovers on retry is
    a success, and only a read whose full retry schedule failed pushes
    the breaker toward open.

    Args:
        policy: Retry schedule; ``None`` means a single attempt.
        breaker: Shared circuit breaker; ``None`` disables fast-fail.
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.policy = policy
        self.breaker = breaker

    def call(self, fn, *args):
        """Run ``fn(*args)`` under the breaker + retry discipline.

        Raises :class:`~repro.core.errors.StorageUnavailable` when the
        breaker is open or when every attempt failed with a transient
        error.  Non-transient errors propagate unchanged and do not
        count against the breaker (a missing block is a caller bug, not
        an availability event).
        """
        if self.breaker is not None and not self.breaker.allow():
            raise StorageUnavailable(
                f"circuit breaker {self.breaker.name!r} is "
                f"{self.breaker.state}; failing fast"
            )
        try:
            if self.policy is None:
                result = fn(*args)
            else:
                result = self.policy.execute(fn, *args)
        except TRANSIENT_ERRORS as exc:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise StorageUnavailable(
                f"storage read kept failing past the retry budget: {exc}"
            ) from exc
        if self.breaker is not None:
            self.breaker.record_success()
        return result
