"""The wavelet error tree.

The storage subsystem of AIMS (§3.2.1) allocates wavelet coefficients to
disk blocks by tiling the *error tree*: the binary tree whose nodes are the
coefficients of a full 1-D decomposition in flat layout.  For a length-``N``
(power of two) signal:

* node ``0`` is the root scaling coefficient;
* node ``1`` is the coarsest detail coefficient, a child of node ``0``;
* every detail node ``k >= 1`` has children ``2k`` and ``2k + 1`` (when
  ``2k < N``) — the two finer-scale details whose supports it covers.

For the Haar filter, answering a *point* query ``x[i]`` requires exactly the
root-to-leaf path of coefficients above position ``i``; a *range* query
requires the union of the paths of its two boundary positions plus, at each
level, nothing else (interior details integrate to zero).  This "you always
need the whole path" access pattern is the locality principle the paper's
block-allocation study exploits, and the path structure is what the
``1 + lg B`` utilization bound is stated over.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import TransformError
from repro.wavelets.dwt import is_power_of_two

__all__ = [
    "parent",
    "children",
    "path_to_root",
    "leaf_path",
    "range_support",
    "tree_depth",
    "nodes_at_depth",
]


def parent(node: int) -> int | None:
    """Parent of ``node`` in the error tree; ``None`` for the root."""
    if node < 0:
        raise TransformError(f"invalid error-tree node {node}")
    if node == 0:
        return None
    if node == 1:
        return 0
    return node // 2


def children(node: int, n: int) -> tuple[int, ...]:
    """Children of ``node`` in the error tree over ``n`` coefficients."""
    if not is_power_of_two(n):
        raise TransformError(f"error tree needs power-of-two size, got {n}")
    if node == 0:
        return (1,) if n > 1 else ()
    lo = 2 * node
    if lo >= n:
        return ()
    return (lo, lo + 1)


def path_to_root(node: int) -> list[int]:
    """Nodes from ``node`` up to (and including) the root, in that order."""
    path = [node]
    current = node
    while True:
        up = parent(current)
        if up is None:
            return path
        path.append(up)
        current = up


def leaf_path(position: int, n: int) -> list[int]:
    """Coefficients needed to reconstruct Haar sample ``x[position]``.

    For a full ``log2(n)``-level Haar decomposition the reconstruction of a
    single sample uses the root scaling coefficient and one detail per
    level: the detail node at depth ``d`` (0 = coarsest band) covering the
    sample is ``2**d + (position >> (J - d))`` for ``J = log2(n)``, because
    that band was produced at cascade step ``J - d`` where each coefficient
    covers ``2**(J - d)`` original positions.

    Returns:
        Node indices ordered root-first (length ``log2(n) + 1``).
    """
    if not is_power_of_two(n):
        raise TransformError(f"error tree needs power-of-two size, got {n}")
    if not 0 <= position < n:
        raise TransformError(f"position {position} outside [0, {n})")
    levels = n.bit_length() - 1
    path = [0]
    for depth in range(levels):
        path.append((1 << depth) + (position >> (levels - depth)))
    return path


def range_support(lo: int, hi: int, n: int) -> set[int]:
    """Coefficients a Haar range-sum over ``[lo, hi]`` may touch.

    The exact Haar range-sum needs the root plus, per level, only the detail
    nodes whose support straddles one of the two range boundaries — i.e.
    the union of the boundary leaf paths.  (Details fully inside the range
    sum to zero against the constant query and details fully outside
    multiply zeros.)
    """
    if hi < lo:
        return set()
    support = set(leaf_path(lo, n))
    support |= set(leaf_path(hi, n))
    return support


def tree_depth(n: int) -> int:
    """Depth of the error tree (``log2(n)`` detail levels)."""
    if not is_power_of_two(n):
        raise TransformError(f"error tree needs power-of-two size, got {n}")
    return n.bit_length() - 1


def nodes_at_depth(depth: int, n: int) -> range:
    """Detail nodes at a given depth (``depth == 0`` is node 1's level)."""
    total_depth = tree_depth(n)
    if not 0 <= depth < total_depth:
        raise TransformError(
            f"depth {depth} outside [0, {total_depth}) for size {n}"
        )
    return range(1 << depth, 1 << (depth + 1))
