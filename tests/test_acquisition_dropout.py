"""Sensor-dropout resilience: the live sampler and the GapFiller.

A flaky sensor (NaN readings) must never kill a live acquisition
session or leak NaNs into downstream math; gaps are repaired causally
(hold last good value), counted, and visible in the stats.
"""

import numpy as np

from repro.acquisition.streaming import StreamingAdaptiveSampler
from repro.streams.dropout import GapFiller
from repro.streams.sample import Frame
from repro.streams.source import ArraySource


def make_sampler(width=3, rate_hz=32.0):
    return StreamingAdaptiveSampler(
        width=width, rate_hz=rate_hz, window_seconds=1.0
    )


class TestSamplerDropouts:
    def test_nan_reading_does_not_raise_and_holds_last_value(self):
        sampler = make_sampler()
        sampler.push(np.array([1.0, 2.0, 3.0]))
        recorded = sampler.push(np.array([4.0, np.nan, 6.0]))
        # First window records every tick; the gap reads as the held 2.0.
        by_sensor = {s.sensor_id: s.value for s in recorded}
        assert by_sensor[1] == 2.0
        assert sampler.stats.dropouts == 1

    def test_cold_start_gap_reads_zero(self):
        sampler = make_sampler(width=2)
        recorded = sampler.push(np.array([np.nan, 5.0]))
        by_sensor = {s.sensor_id: s.value for s in recorded}
        assert by_sensor[0] == 0.0
        assert by_sensor[1] == 5.0

    def test_dropout_storm_survives_reestimation(self):
        # Enough ticks to close several estimation windows with NaNs
        # sprinkled in: the spectral estimator must only ever see finite
        # values, so nothing raises and the factors stay valid.
        rng = np.random.default_rng(3)
        sampler = make_sampler(width=4, rate_hz=32.0)
        t = np.arange(200) / 32.0
        for i in range(200):
            frame = np.sin(2 * np.pi * np.array([1, 2, 4, 6]) * t[i])
            gaps = rng.random(4) < 0.1
            frame[gaps] = np.nan
            sampler.push(frame)
        assert sampler.stats.ticks_seen == 200
        assert sampler.stats.dropouts > 0
        assert sampler.stats.rate_updates > 0

    def test_clean_sessions_count_zero_dropouts(self):
        sampler = make_sampler()
        for i in range(50):
            sampler.push(np.array([float(i), 1.0, -1.0]))
        assert sampler.stats.dropouts == 0


class TestGapFiller:
    def frames(self, matrix):
        return [
            Frame.from_array(i / 10.0, row) for i, row in enumerate(matrix)
        ]

    def test_fills_gaps_causally(self):
        matrix = np.array([
            [1.0, 10.0],
            [np.nan, 20.0],
            [3.0, np.nan],
            [np.nan, np.nan],
        ])
        filler = GapFiller(self.frames(matrix))
        repaired = [f.as_array() for f in filler]
        assert np.array_equal(repaired[1], [1.0, 20.0])
        assert np.array_equal(repaired[2], [3.0, 20.0])
        assert np.array_equal(repaired[3], [3.0, 20.0])
        assert filler.gaps_filled == 4
        assert filler.frames_patched == 3

    def test_leading_gap_uses_fill_value(self):
        matrix = np.array([[np.nan, 2.0], [1.0, 2.0]])
        repaired = [
            f.as_array()
            for f in GapFiller(self.frames(matrix), fill_value=-7.0)
        ]
        assert np.array_equal(repaired[0], [-7.0, 2.0])

    def test_clean_stream_passes_through_untouched(self):
        matrix = np.arange(12, dtype=float).reshape(4, 3)
        frames = self.frames(matrix)
        filler = GapFiller(frames)
        assert [f.values for f in filler] == [f.values for f in frames]
        assert filler.gaps_filled == 0
        assert filler.frames_patched == 0

    def test_wraps_a_stream_source(self):
        matrix = np.ones((6, 2))
        matrix[2, 1] = np.nan
        out = list(GapFiller(ArraySource(matrix, rate_hz=10.0)))
        assert len(out) == 6
        assert all(np.isfinite(f.as_array()).all() for f in out)

    def test_output_timestamps_preserved(self):
        matrix = np.array([[np.nan], [1.0]])
        frames = self.frames(matrix)
        out = list(GapFiller(frames))
        assert [f.timestamp for f in out] == [f.timestamp for f in frames]
