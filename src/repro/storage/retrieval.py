"""Progressive retrieval of stored signals from wavelet blocks (§3.2.1).

The storage section's payoff is not only aggregate queries: "we can define
a query dependent importance function on disk blocks ... which would allow
us to perform the most valuable I/O's first and deliver approximate
results progressively".  Applied to *signal retrieval*, that means a
stored sensor stream can be streamed back coarse-to-fine: fetch the blocks
carrying the most coefficient energy first, reconstruct after every fetch,
and hand the application a monotonically improving signal with a known
residual-energy bound (orthonormality makes the unfetched energy exactly
the squared reconstruction error).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.errors import StorageError
from repro.storage.allocation import Allocation, subtree_tiling_allocation
from repro.storage.blockstore import WaveletBlockStore
from repro.wavelets.dwt import WaveletCoefficients, max_levels, wavedec, waverec
from repro.wavelets.filters import get_filter

__all__ = ["ProgressiveSignal", "SignalArchive"]


@dataclass(frozen=True)
class ProgressiveSignal:
    """One refinement step of a progressive signal retrieval.

    Attributes:
        signal: Reconstruction from the coefficients fetched so far.
        residual_energy: Squared L2 norm of everything not yet fetched —
            exactly ``||signal - exact||^2`` by orthonormality.
        blocks_read: Device blocks fetched so far.
    """

    signal: np.ndarray
    residual_energy: float
    blocks_read: int

    def nrmse(self, reference: np.ndarray) -> float:
        """Normalized RMS error against a reference signal."""
        ref = np.asarray(reference, dtype=float)
        spread = float(ref.max() - ref.min()) or 1.0
        return float(np.sqrt(np.mean((self.signal - ref) ** 2))) / spread


class SignalArchive:
    """A 1-D sensor signal stored as tiled wavelet blocks.

    Args:
        signal: The signal to archive (power-of-two length).
        wavelet: Filter name.
        block_size: Tiling block size.
        pool_capacity: Optional buffer-pool size.
    """

    def __init__(
        self,
        signal: np.ndarray,
        wavelet: str = "db2",
        block_size: int = 7,
        pool_capacity: int | None = None,
    ) -> None:
        data = np.asarray(signal, dtype=float)
        if data.ndim != 1:
            raise StorageError(
                f"signal archives are 1-D, got ndim={data.ndim}"
            )
        filt = get_filter(wavelet)
        self.levels = max_levels(data.size, filt)
        if self.levels < 1:
            raise StorageError(
                f"signal of length {data.size} cannot be archived with "
                f"{filt.length}-tap filter"
            )
        self.wavelet = filt.name
        self.length = data.size
        flat = wavedec(data, filt, levels=self.levels).to_flat()
        allocation = subtree_tiling_allocation(data.size, block_size)
        self.store = WaveletBlockStore(
            flat, allocation, pool_capacity=pool_capacity
        )
        # Per-block energies, recorded at archive time for the
        # importance order and the residual bound.
        self._block_energy: dict[int, float] = {}
        for idx, value in enumerate(flat):
            block_id = int(allocation.block_of[idx])
            self._block_energy[block_id] = (
                self._block_energy.get(block_id, 0.0) + float(value) ** 2
            )

    @property
    def n_blocks(self) -> int:
        """Blocks the archive occupies."""
        return len(self._block_energy)

    def retrieve_exact(self) -> np.ndarray:
        """Full-fidelity retrieval (reads every block)."""
        last = None
        for step in self.retrieve_progressive():
            last = step
        return last.signal

    def retrieve_progressive(self) -> Iterator[ProgressiveSignal]:
        """Stream refinements, most energetic blocks first."""
        order = sorted(
            self._block_energy, key=lambda b: -self._block_energy[b]
        )
        residual = sum(self._block_energy.values())
        flat = np.zeros(self.length)
        for step, block_id in enumerate(order, start=1):
            for idx, value in self.store.fetch_block(block_id).items():
                flat[idx] = value
            residual -= self._block_energy[block_id]
            bundle = WaveletCoefficients.from_flat(
                flat, self.levels, self.wavelet
            )
            yield ProgressiveSignal(
                signal=waverec(bundle),
                residual_energy=max(0.0, residual),
                blocks_read=step,
            )

    def retrieve_approximate(self, block_budget: int) -> ProgressiveSignal:
        """Best reconstruction within a block-I/O budget."""
        if block_budget < 1:
            raise StorageError(
                f"block budget must be >= 1, got {block_budget}"
            )
        last = None
        for last in self.retrieve_progressive():
            if last.blocks_read >= block_budget:
                break
        return last
