"""Tests for the causal streaming sampler (repro.acquisition.streaming)."""

import numpy as np
import pytest

from repro.core.errors import AcquisitionError
from repro.acquisition.streaming import StreamingAdaptiveSampler
from repro.sensors.glove import CyberGloveSimulator
from repro.sensors.noise import NoiseModel


RATE = 100.0


def make_session(duration=20.0, seed=0, quiet_second_half=False):
    sim = CyberGloveSimulator(noise=NoiseModel(white_sigma=0.0))
    n = int(duration * RATE)
    activity = None
    if quiet_second_half:
        activity = np.ones(n)
        activity[n // 2 :] = 0.05
    return sim.capture(duration, np.random.default_rng(seed), activity=activity)


class TestCausality:
    def test_prefix_decisions_identical(self):
        """Decisions for tick t must depend only on ticks < t: running the
        sampler on a prefix yields exactly the prefix of the full run."""
        session = make_session(duration=6.0)
        full = StreamingAdaptiveSampler(width=28, rate_hz=RATE)
        full_samples = full.process(session)
        half = StreamingAdaptiveSampler(width=28, rate_hz=RATE)
        half_samples = half.process(session[: session.shape[0] // 2])
        cutoff = (session.shape[0] // 2) / RATE
        full_prefix = [s for s in full_samples if s.timestamp < cutoff]
        assert half_samples == full_prefix

    def test_first_window_records_everything(self):
        session = make_session(duration=2.0)
        sampler = StreamingAdaptiveSampler(
            width=28, rate_hz=RATE, window_seconds=1.0
        )
        first_window = session[: sampler._window_ticks]
        recorded = sampler.process(first_window)
        assert len(recorded) == first_window.size


class TestAdaptation:
    def test_rate_drops_after_quiet_onset(self):
        session = make_session(duration=20.0, quiet_second_half=True)
        sampler = StreamingAdaptiveSampler(width=28, rate_hz=RATE)
        n = session.shape[0]
        first = sampler.process(session[: n // 2])
        second = sampler.process(session[n // 2 :])
        # The second (quiet) half is recorded far sparser.
        assert len(second) < len(first) / 2

    def test_bandwidth_comparable_to_offline_adaptive(self):
        from repro.acquisition.sampling import AdaptiveSampler

        session = make_session(duration=20.0)
        offline = AdaptiveSampler().sample(session, RATE)
        online = StreamingAdaptiveSampler(width=28, rate_hz=RATE)
        online_samples = online.process(session)
        # Causal decisions lag one window, so allow head-room; the orders
        # of magnitude must match.
        assert len(online_samples) < 3 * offline.samples_recorded

    def test_reconstruction_quality(self):
        session = make_session(duration=20.0)
        sampler = StreamingAdaptiveSampler(width=28, rate_hz=RATE)
        samples = sampler.process(session)
        # Per-sensor linear interpolation of the recorded readings.
        ticks = np.arange(session.shape[0])
        err = 0.0
        for s in range(28):
            mine = [(int(round(x.timestamp * RATE)), x.value)
                    for x in samples if x.sensor_id == s]
            t_kept, v_kept = zip(*mine)
            approx = np.interp(ticks, t_kept, v_kept)
            err += float(np.mean((approx - session[:, s]) ** 2))
        nrmse = np.sqrt(err / 28) / (session.max() - session.min())
        assert nrmse < 0.05

    def test_stats_accounting(self):
        session = make_session(duration=5.0)
        sampler = StreamingAdaptiveSampler(width=28, rate_hz=RATE)
        samples = sampler.process(session)
        assert sampler.stats.ticks_seen == session.shape[0]
        assert sampler.stats.samples_recorded == len(samples)
        assert 0 < sampler.stats.record_fraction <= 28.0
        assert sampler.stats.rate_updates > 0


class TestValidation:
    def test_bad_config(self):
        with pytest.raises(AcquisitionError):
            StreamingAdaptiveSampler(width=0, rate_hz=RATE)
        with pytest.raises(AcquisitionError):
            StreamingAdaptiveSampler(width=2, rate_hz=0.0)
        with pytest.raises(AcquisitionError):
            StreamingAdaptiveSampler(width=2, rate_hz=RATE, sensor_ids=[1])

    def test_bad_frame(self):
        sampler = StreamingAdaptiveSampler(width=3, rate_hz=RATE)
        with pytest.raises(AcquisitionError):
            sampler.push(np.zeros(4))
