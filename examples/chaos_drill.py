"""A chaos drill through the sharded resilience stack: faults in,
bounds out.

Storage is built from one declarative
:class:`~repro.storage.device.StorageSpec` — four shards, a small
per-shard cache, CRC framing, seeded fault injection, retries and a
per-shard circuit breaker — and the drill walks the failure ladder:

1. transient faults on every shard, absorbed silently by retries —
   answers stay exact;
2. a deadline cut — the query downgrades to its best progressive
   estimate with a *guaranteed* error bound, explicitly flagged;
3. a single-shard outage — only that shard's breaker trips, the three
   healthy shards keep answering, and the query degrades to a bounded
   estimate (``blocks_skipped`` counts the unreachable blocks) instead
   of failing;
4. healing — injection stops, the half-open probe closes the tripped
   breaker, and answers return to exact.

Everything is observable: the drill ends with the ``faults.*`` /
``retry.*`` / ``breaker.*`` counters the run produced (the series
``docs/OPERATIONS.md`` explains how to read under load).

Run:
    python examples/chaos_drill.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.faults import CircuitBreaker, FaultPlan, RetryPolicy
from repro.obs import counter as obs_counter
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery
from repro.storage.device import StorageSpec

SHARDS = 4


def build(storage: StorageSpec | None = None) -> ProPolyneEngine:
    rng = np.random.default_rng(2003)
    cube = rng.poisson(3.0, (64, 64)).astype(float)
    return ProPolyneEngine(cube, max_degree=1, block_size=7,
                           storage=storage)


def breaker_states(engine: ProPolyneEngine) -> str:
    return "/".join(b.state for b in engine.store.breakers)


def main() -> None:
    query = RangeSumQuery.count([(10, 40), (5, 50)])
    clean = build()
    truth = clean.evaluate_exact(query)
    print(f"ground truth (clean store): COUNT = {truth:.0f}")

    # ---- 1. transient faults: retries absorb them ---------------------------
    print(f"\n== {SHARDS} shards, 5% injected read faults on every one, "
          f"retries enabled ==")
    engine = build(StorageSpec(
        shards=SHARDS,
        cache_blocks=16,
        fault_plan=FaultPlan(seed=7, read_error_rate=0.05, torn_rate=0.02),
        retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.0005),
        breaker=CircuitBreaker(failure_threshold=8,
                               recovery_timeout_s=0.05),
    ))
    outcome = engine.evaluate_degradable(query)
    print(f"answer {outcome.value:.0f} (degraded={outcome.degraded}) — "
          f"bitwise equal to truth: {outcome.value == truth}")
    print(f"the cost was time, not correctness: "
          f"{obs_counter('retry.retries').value:.0f} retries, "
          f"{obs_counter('retry.recoveries').value:.0f} recoveries")

    # ---- 2. a deadline: degrade to a bounded estimate -----------------------
    print("\n== per-query deadline of 0 s (worst case) ==")
    rushed = engine.evaluate_degradable(query, deadline_s=0.0)
    print(f"degraded={rushed.degraded} reason={rushed.reason!r}: "
          f"estimate {rushed.value:.0f} after {rushed.blocks_read} blocks, "
          f"guaranteed |error| <= {rushed.error_bound:.1f}")
    print(f"guarantee holds: "
          f"{abs(rushed.value - truth) <= rushed.error_bound}")

    # ---- 3. one shard dies: the others keep answering -----------------------
    print("\n== shard 1 outage: every read on that shard fails ==")
    stormy = build(StorageSpec(
        shards=SHARDS,
        cache_blocks=16,
        fault_plan=FaultPlan(seed=9, read_error_rate=1.0),
        fault_shards=(1,),
        retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0,
                                 budget_s=0.0),
        breaker=CircuitBreaker(failure_threshold=3,
                               recovery_timeout_s=0.01),
    ))
    for i in range(3):
        out = stormy.evaluate_degradable(query)
        print(f"query {i + 1}: degraded={out.degraded} "
              f"reason={out.reason!r} skipped={out.blocks_skipped} "
              f"breakers={breaker_states(stormy)}")
        print(f"  bounded estimate {out.value:.0f}, "
              f"|error| <= {out.error_bound:.1f} "
              f"(holds: {abs(out.value - truth) <= out.error_bound})")
    # Storage "heals": stop injecting and let shard 1's half-open probe
    # close its breaker.  The declarative stack heals as one unit.
    stormy.store.set_injecting(False)
    time.sleep(0.02)  # past the recovery timeout: probes are allowed
    healed = stormy.evaluate_degradable(query)
    print(f"after healing: degraded={healed.degraded}, "
          f"answer {healed.value:.0f}, "
          f"breakers={breaker_states(stormy)}")

    # ---- 4. the operator's view ---------------------------------------------
    print("\n== resilience counters this drill produced ==")
    for name in (
        "faults.injected.read_errors", "faults.injected.torn_blocks",
        "faults.crc_failures", "retry.attempts", "retry.retries",
        "retry.recoveries", "retry.giveups", "breaker.trips",
        "breaker.rejections", "query.degraded",
    ):
        print(f"  {name:30s} {obs_counter(name).value:.0f}")


if __name__ == "__main__":
    main()
