"""Process-pool query execution: GIL-free scans over per-worker engines.

The thread-pool front end (:mod:`repro.query.service`) scales by
overlapping simulated device latency — every sleep releases the GIL —
but the Python share of each evaluation (translation, planning,
scatter/gather bookkeeping) still serializes on one interpreter.  This
module supplies the alternative execution mode the ROADMAP's
"break the 4x throughput ceiling" item asks for: a pool of worker
*processes*, each owning a full engine replica, so the numpy kernels
and the per-shard scans run without sharing a GIL at all.

The replication contract:

* A worker cannot receive the live engine — device stacks hold
  ``threading.Lock``\\ s (caches, breakers, latency models) that do not
  pickle.  Instead the parent ships an :class:`EngineBlueprint`: the
  read-back coefficient cube plus shape/degree/block-size metadata and
  a *portable* :class:`~repro.storage.device.StorageSpec` encoding.
  Each worker rebuilds its device stack from that pickled spec via
  :meth:`~repro.query.propolyne.ProPolyneEngine.from_coefficients`.
* Coefficients are stored as given (no transform round trip), so every
  worker's answers are bitwise-identical to the parent engine's.
* Only pickle-clean specs are portable: ``fault_plan`` /
  ``retry_policy`` / ``breaker`` carry live locks and seeded mutable
  state whose replication semantics would be ambiguous (N independent
  breakers tripping separately is not one breaker tripping).  Process
  mode therefore serves the clean high-throughput path; chaos drills
  and degradable queries stay in thread mode.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.errors import QueryError
from repro.obs import counter as obs_counter
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery
from repro.storage.device import StorageSpec
from repro.storage.latency import LatencyModel

__all__ = [
    "EngineBlueprint",
    "ProcessEnginePool",
    "blueprint_of",
    "portable_spec_config",
    "spec_from_config",
]


def portable_spec_config(spec: StorageSpec) -> dict:
    """Encode a :class:`StorageSpec` as a pickle-clean config dict.

    Raises:
        QueryError: If the spec carries live resilience/fault objects —
            their locks and seeded mutable state cannot be shipped to
            worker processes (see the module docstring's contract).
    """
    if (
        spec.fault_plan is not None
        or spec.retry_policy is not None
        or spec.breaker is not None
    ):
        raise QueryError(
            "process-pool mode needs a pickle-clean StorageSpec: "
            "fault_plan/retry_policy/breaker hold locks and seeded "
            "state that cannot be replicated into worker processes; "
            "run fault/chaos workloads in thread mode"
        )
    latency = spec.latency
    return {
        "shards": spec.shards,
        "cache_blocks": spec.cache_blocks,
        "crc": spec.crc,
        "metered": spec.metered,
        "fanout_workers": spec.fanout_workers,
        "latency": (
            None
            if latency is None
            else (
                latency.base_s,
                latency.spike_rate,
                latency.spike_s,
                latency.seed,
            )
        ),
    }


def spec_from_config(config: dict) -> StorageSpec:
    """Rebuild the :class:`StorageSpec` a worker's device stack uses."""
    latency = config["latency"]
    return StorageSpec(
        shards=config["shards"],
        cache_blocks=config["cache_blocks"],
        crc=config["crc"],
        metered=config["metered"],
        fanout_workers=config["fanout_workers"],
        latency=(
            None
            if latency is None
            else LatencyModel(
                base_s=latency[0],
                spike_rate=latency[1],
                spike_s=latency[2],
                seed=latency[3],
            )
        ),
    )


@dataclass(frozen=True)
class EngineBlueprint:
    """Everything a worker process needs to rebuild an engine replica.

    Attributes:
        coefficients: The parent engine's read-back coefficient cube
            (padded shape) — stored verbatim by the replica, which is
            what makes worker answers bitwise-identical.
        original_shape: Pre-padding data-cube shape.
        max_degree: Highest supported measure-polynomial degree.
        block_size: Per-axis virtual block size.
        storage_config: Portable spec encoding
            (:func:`portable_spec_config`).
    """

    coefficients: np.ndarray
    original_shape: tuple[int, ...]
    max_degree: int
    block_size: int
    storage_config: dict

    def build(self) -> ProPolyneEngine:
        """Construct the engine replica (runs inside the worker)."""
        return ProPolyneEngine.from_coefficients(
            self.coefficients,
            self.original_shape,
            max_degree=self.max_degree,
            block_size=self.block_size,
            storage=spec_from_config(self.storage_config),
        )


def blueprint_of(engine: ProPolyneEngine) -> EngineBlueprint:
    """Snapshot a live engine into a shippable blueprint.

    Reads the coefficients back through the device stack once (paying
    its simulated latency), so take the snapshot before serving
    traffic.  The spec is validated *before* that read, so an
    unportable spec fails with :class:`~repro.core.errors.QueryError`
    instead of whatever its fault plan would inject first.
    """
    storage_config = portable_spec_config(engine.store.spec)
    return EngineBlueprint(
        coefficients=engine.to_coefficients(),
        original_shape=engine.original_shape,
        max_degree=engine.max_degree,
        block_size=engine.block_size,
        storage_config=storage_config,
    )


# -- worker side (runs in the child processes) ---------------------------

_WORKER_ENGINE: ProPolyneEngine | None = None


def _worker_init(blueprint: EngineBlueprint) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = blueprint.build()


def _worker_exact(query: RangeSumQuery) -> float:
    return _WORKER_ENGINE.evaluate_exact(query)


def _worker_batch(queries: list[RangeSumQuery]) -> list[float]:
    from repro.query.batch import BatchEvaluator

    return BatchEvaluator(_WORKER_ENGINE).evaluate_exact(queries)


class ProcessEnginePool:
    """A pool of worker processes, each serving one engine replica.

    Args:
        blueprint: The engine snapshot every worker rebuilds.
        workers: Worker-process count (>= 1).

    The pool always uses the ``spawn`` start method: the parent may
    already be running service threads, and forking a threaded process
    can freeze a child on a lock some other thread held at fork time.
    Spawned workers pay an interpreter start + replica build once,
    amortized over the pool's lifetime; the constructor warms the pool
    eagerly so a broken blueprint fails fast.
    """

    def __init__(self, blueprint: EngineBlueprint, workers: int) -> None:
        if workers < 1:
            raise QueryError(
                f"process pool needs >= 1 worker, got {workers}"
            )
        self.workers = workers
        ctx = multiprocessing.get_context("spawn")
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(blueprint,),
        )
        # Eager spin-up: every worker process is created (and its
        # replica-building initializer scheduled) right now; a broken
        # blueprint surfaces here, not on the first real query.
        warmups = [
            self._pool.submit(_worker_ready) for _ in range(workers)
        ]
        for future in warmups:
            future.result()
        obs_counter("query.procpool.workers").inc(workers)

    def run_exact(self, query: RangeSumQuery) -> float:
        """Evaluate one exact query on a worker process (blocking)."""
        obs_counter("query.procpool.queries").inc()
        return self._pool.submit(_worker_exact, query).result()

    def run_batch(self, queries: list[RangeSumQuery]) -> list[float]:
        """Evaluate a whole batch on one worker process (blocking)."""
        obs_counter("query.procpool.batches").inc()
        return self._pool.submit(_worker_batch, queries).result()

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ProcessEnginePool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _worker_ready() -> bool:
    return True
