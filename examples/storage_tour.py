"""A tour of the storage subsystem (§3.2): tiling, locality, progressive
retrieval.

Walks through the paper's storage story on a real signal: archive a glove
sensor stream as tiled wavelet blocks, measure the items-per-block
utilization of tiling against the 1+lg B ceiling and the naive
allocations, show the caching device layer exploiting the locality
tiling creates, and stream the signal back progressively with exact
residual-energy bars.

Run:
    python examples/storage_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.sensors.glove import CyberGloveSimulator
from repro.sensors.noise import NoiseModel
from repro.storage.allocation import (
    measure_utilization,
    point_query_workload,
    random_allocation,
    sequential_allocation,
    subtree_tiling_allocation,
    utilization_bound,
)
from repro.storage.retrieval import SignalArchive


def main() -> None:
    rng = np.random.default_rng(32)  # §3.2
    glove = CyberGloveSimulator(noise=NoiseModel(white_sigma=0.2))
    session = glove.capture(40.96, rng)  # 4096 frames at 100 Hz
    signal = session[:4096, 20]  # the wrist-flexion channel

    # ---- 1. allocation utilization -----------------------------------------
    print("== needed items per retrieved block (point queries, n=4096) ==")
    n, block = 4096, 7
    workload = point_query_workload(n, rng, count=200)
    for name, alloc in (
        ("sequential", sequential_allocation(n, block)),
        ("random", random_allocation(n, block, rng)),
        ("subtree tiling", subtree_tiling_allocation(n, block)),
    ):
        print(f"  {name:15s}: {measure_utilization(alloc, workload):.2f}")
    print(f"  {'1 + lg B bound':15s}: {utilization_bound(block):.2f}")

    # ---- 2. archive + locality ----------------------------------------------
    print("\n== archive with a caching device layer ==")
    archive = SignalArchive(signal, wavelet="db2", block_size=7,
                            pool_capacity=1024)
    print(f"signal: {signal.size} samples -> {archive.n_blocks} blocks")
    archive.retrieve_exact()
    before = archive.store.io_snapshot()
    archive.retrieve_exact()  # second pass: served from the cache
    print(f"device reads on a repeated full retrieval: "
          f"{archive.store.io_since(before).reads} "
          f"(working set fits the cache, so the second pass is free)")

    # ---- 3. progressive retrieval --------------------------------------------
    print("\n== progressive signal retrieval ==")
    total_energy = float(np.sum(signal**2))
    for step in archive.retrieve_progressive():
        frac = step.blocks_read / archive.n_blocks
        if step.blocks_read in (1, 2, 4, 8, 16, 32, 64) or \
                step.residual_energy == 0.0:
            print(f"  {step.blocks_read:4d} blocks ({frac:5.1%} of I/O): "
                  f"NRMSE {step.nrmse(signal):.4f}, residual energy "
                  f"{step.residual_energy / total_energy:.2%}")
        if step.nrmse(signal) < 0.01:
            print(f"  1% NRMSE reached after {step.blocks_read} of "
                  f"{archive.n_blocks} blocks")
            break


if __name__ == "__main__":
    main()
