"""Tests for the runtime lock-order detector (``repro.lint.lockwatch``).

The centerpiece is the inversion test: one code path takes A then B,
another takes B then A — a latent deadlock whether or not the schedules
ever collide.  The watcher must report exactly that cycle and carry the
acquisition stack of *both* offending edges, because a report naming
only one side is not actionable.
"""

import threading

import pytest

from repro.lint import lockwatch
from repro.lint.lockwatch import (
    InstrumentedLock,
    LockOrderError,
    LockOrderGraph,
    watched_lock,
)


@pytest.fixture
def watcher():
    """Lockwatch forced on, graph clean before and after."""
    lockwatch.enable()
    lockwatch.reset()
    try:
        yield
    finally:
        lockwatch.disable()
        lockwatch.reset()


class TestFastPath:
    def test_disabled_watcher_hands_out_plain_locks(self):
        lockwatch.disable()
        try:
            lock = watched_lock("storage.test")
            assert type(lock) is type(threading.Lock())
        finally:
            lockwatch.enable()
            assert isinstance(watched_lock("storage.test"), InstrumentedLock)
            lockwatch.disable()
            lockwatch.reset()

    def test_env_flag_controls_the_default(self, monkeypatch):
        lockwatch.disable()
        try:
            monkeypatch.setenv(lockwatch.ENV_FLAG, "1")
            assert not lockwatch.enabled()  # explicit disable() wins
        finally:
            lockwatch._forced = None
        monkeypatch.setenv(lockwatch.ENV_FLAG, "1")
        assert lockwatch.enabled()
        monkeypatch.delenv(lockwatch.ENV_FLAG)
        assert not lockwatch.enabled()


class TestInversionDetection:
    def test_ab_then_ba_is_reported_with_both_stacks(self, watcher):
        a = watched_lock("test.a")
        b = watched_lock("test.b")

        with a:
            with b:
                pass
        assert lockwatch.violations() == []

        with b:
            with a:
                pass

        (violation,) = lockwatch.violations()
        assert set(violation.cycle) == {"test.a", "test.b"}
        report = violation.format()
        assert "lock-order cycle:" in report
        assert "test.a -> test.b" in report
        assert "test.b -> test.a" in report
        # Both edges carry the acquisition stack that created them —
        # this very test function must appear in each.
        assert len(violation.edges) == 2
        for edge in violation.edges:
            assert any(
                "test_ab_then_ba_is_reported_with_both_stacks" in frame
                for frame in edge.stack
            )

    def test_consistent_ordering_stays_clean(self, watcher):
        a = watched_lock("test.a")
        b = watched_lock("test.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert lockwatch.violations() == []
        assert lockwatch.global_graph().edge_count() == 1

    def test_inversion_across_threads_is_detected(self, watcher):
        a = watched_lock("test.a")
        b = watched_lock("test.b")
        first_done = threading.Event()

        def order_ab():
            with a:
                with b:
                    pass
            first_done.set()

        def order_ba():
            first_done.wait(5)
            with b:
                with a:
                    pass

        threads = [
            threading.Thread(target=order_ab),
            threading.Thread(target=order_ba),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5)

        assert len(lockwatch.violations()) == 1

    def test_three_lock_cycle(self, watcher):
        a, b, c = (watched_lock(f"test.{n}") for n in "abc")
        with a, b:
            pass
        with b, c:
            pass
        with c, a:
            pass
        (violation,) = lockwatch.violations()
        assert set(violation.cycle) == {"test.a", "test.b", "test.c"}
        assert len(violation.edges) == 3

    def test_sibling_instances_of_one_site_are_not_a_cycle(self, watcher):
        # Per-shard locks share a site name; nesting two shards' locks
        # is sibling fan-out, not an ordering hazard.
        shard0 = watched_lock("storage.shard")
        shard1 = watched_lock("storage.shard")
        with shard0:
            with shard1:
                pass
        assert lockwatch.violations() == []
        assert lockwatch.global_graph().edge_count() == 0

    def test_assert_clean_raises_with_the_report(self, watcher):
        a = watched_lock("test.a")
        b = watched_lock("test.b")
        with a, b:
            pass
        with b, a:
            pass
        with pytest.raises(LockOrderError) as excinfo:
            lockwatch.assert_clean()
        assert "test.a" in str(excinfo.value)
        assert "test.b" in str(excinfo.value)

    def test_assert_clean_passes_on_an_empty_graph(self, watcher):
        lockwatch.assert_clean()


class TestInstrumentedLock:
    def test_context_manager_round_trip(self, watcher):
        lock = watched_lock("test.cm")
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_non_blocking_acquire_failure_does_not_corrupt_the_stack(
        self, watcher
    ):
        lock = InstrumentedLock("test.nb")
        other = InstrumentedLock("test.other")
        lock.acquire()
        try:
            got = lock.acquire(blocking=False)
            assert not got
            # The failed acquire must not have pushed onto the held
            # stack; a subsequent clean nesting should record exactly
            # one edge.
            with other:
                pass
        finally:
            lock.release()
        assert lockwatch.violations() == []

    def test_isolated_graph_instances_do_not_share_edges(self):
        lockwatch.reset()
        graph = LockOrderGraph()
        graph.record(["x"], "y", ("frame",))
        assert graph.edge_count() == 1
        assert lockwatch.global_graph().edge_count() == 0
        graph.record(["y"], "x", ("frame",))
        assert len(graph.violations) == 1
