"""Quickstart: one pass through all four AIMS subsystems.

Simulates a CyberGlove session, acquires it with adaptive sampling,
archives it, populates a ProPolyne cube from its samples, runs exact and
progressive analytical queries, then trains a small sign vocabulary and
recognizes a live stream — the full block diagram of Fig. 1 in under a
hundred lines.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AIMS, AIMSConfig
from repro.online.recognizer import RecognizerConfig
from repro.query.rangesum import RangeSumQuery, relation_to_cube
from repro.sensors.asl import ASL_VOCABULARY, synthesize_session, synthesize_sign
from repro.sensors.glove import CyberGloveSimulator
from repro.sensors.noise import NoiseModel


def main() -> None:
    rng = np.random.default_rng(2003)  # the year of the paper
    system = AIMS(AIMSConfig(sampler="adaptive", max_degree=2))

    # ---- 1. Acquisition (§3.1) -------------------------------------------
    print("== Acquisition ==")
    glove = CyberGloveSimulator(noise=NoiseModel(white_sigma=0.2))
    session = glove.capture(20.0, rng)
    report = system.acquire(session, glove.rate_hz)
    raw_bytes = session.size * 4
    print(f"raw session: {session.shape[0]} frames x {session.shape[1]} "
          f"sensors = {raw_bytes} bytes")
    print(f"adaptive sampling recorded {report.bytes_recorded} bytes "
          f"({report.bytes_recorded / raw_bytes:.1%} of raw), "
          f"NRMSE {report.nrmse:.4f}")
    standard = sum(1 for b in report.bases if b.kind == "standard")
    print(f"basis selection: {standard} standard / "
          f"{len(report.bases) - standard} wavelet dimensions")

    # ---- 2. Storage (§3.2) --------------------------------------------------
    print("\n== Storage ==")
    ref = system.archive_session("glove-session", report.reconstructed)
    print(f"archived session as BLOB location {ref.location_id} "
          f"({ref.n_bytes} bytes)")

    # ---- 3. Off-line query (§3.3) -------------------------------------------
    print("\n== Off-line query (ProPolyne) ==")
    # Relation (time-bucket, wrist-flexion-bucket) from the glove session.
    wrist = report.reconstructed[:, 20]  # wrist flexion channel
    t_bins = np.minimum(
        (np.arange(wrist.size) * 64) // wrist.size, 63
    ).astype(int)
    w_lo, w_hi = wrist.min(), wrist.max()
    w_bins = np.clip(
        np.round((wrist - w_lo) / (w_hi - w_lo) * 63), 0, 63
    ).astype(int)
    cube = relation_to_cube(np.column_stack([t_bins, w_bins]), (64, 64))
    engine = system.populate("wrist", cube)
    stats = system.aggregates("wrist")

    avg = stats.average([(16, 47), (0, 63)], dim=1)
    print(f"AVERAGE(wrist bucket) over the middle half session: {avg:.2f}")
    var = stats.variance([(0, 63), (0, 63)], dim=1)
    print(f"VARIANCE(wrist bucket) over the whole session: {var:.2f}")

    query = RangeSumQuery.count([(16, 47), (8, 55)])
    exact = engine.evaluate_exact(query)
    print(f"exact COUNT: {exact:.0f}; progressive convergence:")
    for est in engine.evaluate_progressive(query):
        print(f"  after {est.blocks_read:2d} blocks: estimate "
              f"{est.estimate:9.2f}  +/- {est.error_bound:8.2f}")
        if est.error_bound < 0.01 * abs(exact):
            print("  (within 1% guaranteed -> stopping early)")
            break

    # ---- 4. Online query (§3.4) ---------------------------------------------
    print("\n== Online recognition (weighted SVD) ==")
    signs = [ASL_VOCABULARY[i] for i in (5, 7, 9)]  # GREEN, RED, HELLO
    training = {
        s.name: [synthesize_sign(s, rng).frames for _ in range(4)]
        for s in signs
    }
    system.train_vocabulary(training)
    frames, segments = synthesize_session(
        [signs[0], signs[2], signs[1]], rng, gap_duration=0.8
    )
    recognizer = system.recognizer(
        rest_frames=frames[: segments[0].start],
        config=RecognizerConfig(window=50, compare_every=10,
                                declare_threshold=0.4, decline_steps=3),
    )
    detections = recognizer.process(frames)
    print(f"ground truth: {[s.name for s in segments]}")
    print(f"detected    : {[d.name for d in detections]}")
    for d in detections:
        print(f"  {d.name:6s} frames [{d.start:4d}, {d.end:4d}] "
              f"evidence {d.evidence:.2f}")


if __name__ == "__main__":
    main()
