"""E12 — §3.3.1: multiple related range aggregates (group-by / drill-down)
evaluated simultaneously "share I/O maximally and retrieve the most
important data first".

Workload: an 8-cell group-by (COUNT per band) plus a drill-down (COUNT,
SUM, SUM-of-squares over one band) on a 64x64 cube.  Reported: blocks read
by the shared batch plan vs independent per-query evaluation, and the
progressive convergence of the whole batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.query.batch import BatchEvaluator
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery, evaluate_on_cube
from repro.sensors.atmosphere import atmospheric_cube

from conftest import format_table


def build():
    cube = atmospheric_cube((64, 64), np.random.default_rng(12))
    engine = ProPolyneEngine(cube, max_degree=2, block_size=7)
    group_by = [
        RangeSumQuery.count([(8 * g, 8 * g + 7), (0, 63)]) for g in range(8)
    ]
    drill_down = [
        RangeSumQuery.count([(16, 23), (0, 63)]),
        RangeSumQuery.weighted([(16, 23), (0, 63)], {1: 1}),
        RangeSumQuery.weighted([(16, 23), (0, 63)], {1: 2}),
    ]
    return cube, engine, group_by, drill_down


def run_study():
    cube, engine, group_by, drill_down = build()
    batch = BatchEvaluator(engine)
    results = {}
    rows = []
    for name, queries in (("group-by x8", group_by), ("drill-down x3", drill_down)):
        shared = batch.shared_block_count(queries)
        independent = batch.independent_block_count(queries)
        values = batch.evaluate_exact(queries)
        expected = [evaluate_on_cube(cube, q) for q in queries]
        np.testing.assert_allclose(values, expected, rtol=1e-8, atol=1e-6)
        results[name] = (shared, independent)
        rows.append(
            [name, independent, shared, f"{1 - shared / independent:.1%}"]
        )

    # Progressive batch: fraction of group-by cells within 5% per step.
    exact = [evaluate_on_cube(cube, q) for q in group_by]
    convergence = []
    for step in batch.evaluate_progressive(group_by):
        within = sum(
            1
            for est, bound, ex in zip(step.estimates, step.error_bounds, exact)
            if bound <= 0.05 * max(abs(ex), 1.0)
        )
        if step.blocks_read in (1, 2, 4, 8, 16, 32, 64) or within == len(exact):
            convergence.append([step.blocks_read, f"{within}/{len(exact)}"])
        if within == len(exact):
            break
    return results, rows, convergence


def test_e12_shared_io_batch(emit, benchmark):
    results, rows, convergence = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )
    emit(
        "E12_batch_shared_io",
        format_table(
            ["batch", "independent blocks", "shared blocks", "I/O saved"],
            rows,
        )
        + "\n\nprogressive batch (cells within guaranteed 5%):\n"
        + format_table(["blocks read", "cells pinned"], convergence),
    )
    for name, (shared, independent) in results.items():
        assert shared < independent, f"{name}: sharing saved nothing"
    # Drill-downs over one region share almost everything.
    shared, independent = results["drill-down x3"]
    assert shared <= independent / 2
