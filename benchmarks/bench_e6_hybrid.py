"""E6 — §3.3.1: hybrid standard/wavelet ProPolyne "can perform
dramatically better" than pure ProPolyne or a pure relational scan.

Workload: the paper's schema sketch — a relation (sensor_id, time, value)
with 16 sensors, 256 time buckets and 64 value buckets, 20k tuples.
Queries select a single sensor (the typical per-device analysis) and
aggregate over a time range.  Reported per plan: query coefficients
touched and blocks read.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.query.hybrid import HybridEngine
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery, relation_to_cube

from conftest import format_table

SHAPE = (16, 256, 64)
N_TUPLES = 20_000


@pytest.fixture(scope="module")
def relation():
    rng = np.random.default_rng(6)
    sensor = rng.integers(0, SHAPE[0], size=N_TUPLES)
    time_attr = rng.integers(0, SHAPE[1], size=N_TUPLES)
    value = np.clip(
        (np.sin(time_attr / 20.0) * 12 + 32 + rng.normal(0, 6, N_TUPLES)),
        0, SHAPE[2] - 1,
    ).astype(int)
    return np.column_stack([sensor, time_attr, value])


def run_comparison(relation):
    hybrid = HybridEngine(
        relation, SHAPE, standard_dims=(0,), max_degree=1, block_size=7
    )
    cube = relation_to_cube(relation, SHAPE)
    pure = ProPolyneEngine(cube, max_degree=1, block_size=7)

    t_range = (40, 200)
    v_range = (0, SHAPE[2] - 1)
    sensor = 5

    # Hybrid plan.
    value_h, cost = hybrid.query({0: {sensor}}, [t_range, v_range])

    # Pure ProPolyne plan: the categorical predicate becomes a width-1
    # wavelet range.
    pure_query = RangeSumQuery.count([(sensor, sensor), t_range, v_range])
    before = pure.store.io_snapshot()
    value_p = pure.evaluate_exact(pure_query)
    pure_blocks = pure.store.io_since(before).reads
    pure_coeffs = pure.n_query_coefficients(pure_query)

    # Relational plan: scan the matching partition.
    scan_rows = hybrid.relational_scan_cost({0: {sensor}})

    assert value_h == pytest.approx(value_p)
    rows = [
        ["hybrid", cost.query_coefficients, cost.blocks_read],
        ["pure ProPolyne", pure_coeffs, pure_blocks],
        ["relational scan", "-", scan_rows],
    ]
    return {
        "hybrid_coeffs": cost.query_coefficients,
        "hybrid_blocks": cost.blocks_read,
        "pure_coeffs": pure_coeffs,
        "pure_blocks": pure_blocks,
        "scan_rows": scan_rows,
    }, rows


def test_e6_hybrid_dramatically_cheaper(relation, emit, benchmark):
    out, rows = benchmark.pedantic(
        run_comparison, args=(relation,), rounds=1, iterations=1
    )
    emit(
        "E6_hybrid_vs_pure",
        format_table(["plan", "query coefficients", "I/O units"], rows),
    )
    # "Dramatically better" than pure ProPolyne on a point predicate:
    # the width-1 wavelet range costs a full sparse factor in the pure
    # plan, one partition in the hybrid plan.
    assert out["hybrid_coeffs"] * 2 < out["pure_coeffs"]
    assert out["hybrid_blocks"] <= out["pure_blocks"]
    # And far below the relational scan of the matching rows.
    assert out["hybrid_blocks"] * 2 < out["scan_rows"]
