"""The translation cache and the vectorized sparse dot product.

The cache memoizes per-dimension ``lazy_range_query_transform`` results
(group-by / drill-down workloads repeat dimension transforms constantly);
correctness requires cached and uncached transforms to be identical, and
the memo to be keyed on *everything* the transform depends on.
"""

import threading

import numpy as np
import pytest

from repro.core.errors import TransformError
from repro.wavelets.lazy import (
    SparseWaveletVector,
    TranslationCache,
    cached_range_query_transform,
    lazy_range_query_transform,
    translation_cache,
)


@pytest.fixture(autouse=True)
def pristine_cache():
    """Each test sees an empty process-wide cache with zeroed stats."""
    cache = translation_cache()
    cache.clear()
    cache.reset_stats()
    yield cache
    cache.clear()
    cache.reset_stats()


class TestCachedTransform:
    def test_cached_equals_uncached(self):
        for poly in ([1.0], [0.0, 1.0], [2.0, -1.0, 0.5]):
            direct = lazy_range_query_transform(
                poly, 3, 21, 32, wavelet="db2"
            )
            cached = cached_range_query_transform(
                poly, 3, 21, 32, wavelet="db2"
            )
            assert cached.entries == direct.entries
            assert cached.n == direct.n and cached.levels == direct.levels

    def test_repeat_lookup_hits_and_shares_the_vector(self, pristine_cache):
        first = cached_range_query_transform([1.0], 2, 13, 16)
        second = cached_range_query_transform([1.0], 2, 13, 16)
        assert second is first  # memo returns the shared vector
        stats = pristine_cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_key_distinguishes_every_transform_input(self, pristine_cache):
        base = dict(poly=[1.0], lo=2, hi=13, n=16, wavelet="db2", levels=None)
        cached_range_query_transform(**base)
        variants = [
            dict(base, poly=[0.0, 1.0]),
            dict(base, lo=3),
            dict(base, hi=12),
            dict(base, n=32),
            dict(base, wavelet="haar"),
            dict(base, levels=1),
        ]
        for kwargs in variants:
            cached_range_query_transform(**kwargs)
        stats = pristine_cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 1 + len(variants)

    def test_error_paths_stay_uncached_errors(self):
        with pytest.raises(TransformError):
            cached_range_query_transform([1.0], -1, 5, 16)
        with pytest.raises(TransformError):
            cached_range_query_transform([], 0, 5, 16)


class TestTranslationCacheLRU:
    def test_capacity_evicts_least_recently_used(self):
        cache = TranslationCache(capacity=2)
        vecs = {
            k: SparseWaveletVector(8, 3, "db2", {k: 1.0}) for k in range(3)
        }
        cache.store(("a",), vecs[0])
        cache.store(("b",), vecs[1])
        assert cache.lookup(("a",)) is vecs[0]  # refresh 'a'
        cache.store(("c",), vecs[2])  # evicts 'b'
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) is vecs[0]
        assert cache.lookup(("c",)) is vecs[2]
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(TransformError):
            TranslationCache(capacity=0)

    def test_hit_rate_and_clear(self):
        cache = TranslationCache(capacity=4)
        vec = SparseWaveletVector(8, 3, "db2", {0: 1.0})
        cache.store(("k",), vec)
        cache.lookup(("k",))
        assert cache.hit_rate == 0.5
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup(("k",)) is None  # entries gone, stats kept
        assert cache.hits == 1

    def test_concurrent_mixed_traffic_is_consistent(self):
        cache = TranslationCache(capacity=16)
        per_thread, n_threads = 200, 6

        def worker(seed):
            def run():
                for i in range(per_thread):
                    key = ("k", (i * (seed + 1)) % 32)
                    if cache.lookup(key) is None:
                        cache.store(
                            key, SparseWaveletVector(8, 3, "db2", {0: 1.0})
                        )
            return run

        threads = [
            threading.Thread(target=worker(s)) for s in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.hits + cache.misses == per_thread * n_threads
        assert len(cache) <= 16


class TestVectorizedDot:
    def test_dot_matches_python_loop_reference(self):
        rng = np.random.default_rng(42)
        for _ in range(20):
            n = 64
            size = int(rng.integers(1, 20))
            idx = rng.choice(n, size=size, replace=False)
            vec = SparseWaveletVector(
                n=n, levels=3, filter_name="db2",
                entries={int(i): float(v) for i, v in
                         zip(idx, rng.normal(size=size))},
            )
            data = rng.normal(size=n)
            reference = sum(
                val * data[i] for i, val in vec.entries.items()
            )
            assert vec.dot(data) == pytest.approx(reference, rel=1e-12)

    def test_dot_of_empty_vector_is_zero(self):
        vec = SparseWaveletVector(8, 3, "db2", {})
        assert vec.dot(np.ones(8)) == 0.0

    def test_dot_on_real_transform(self):
        # End-to-end: the sparse transform dotted with dense coefficients
        # equals the dense range-sum it encodes.
        from repro.wavelets.dwt import wavedec

        rng = np.random.default_rng(7)
        signal = rng.normal(size=32)
        coeffs = wavedec(signal, "db2")
        sparse = lazy_range_query_transform([1.0], 5, 20, 32, wavelet="db2")
        assert sparse.dot(coeffs.to_flat()) == pytest.approx(
            float(np.sum(signal[5:21])), rel=1e-9
        )
