"""Query workload generation.

Several experiments sweep random polynomial range-sums over a cube; this
module is the shared, seeded generator for those workloads so benchmarks
and tests draw from one audited distribution instead of re-rolling their
own.  Shapes supported: uniform random ranges, hot-region drill-downs
(overlapping ranges around one centre — the buffer-pool workload), and
grid group-bys.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import QueryError
from repro.query.rangesum import RangeSumQuery

__all__ = ["random_ranges", "drilldown_ranges", "grid_group_by"]


def _check_shape(shape: tuple[int, ...]) -> None:
    if not shape or any(n < 2 for n in shape):
        raise QueryError(f"need a shape with every axis >= 2, got {shape}")


def random_ranges(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    count: int = 20,
    min_width: int = 2,
    max_width: int | None = None,
    degrees: dict[int, int] | None = None,
) -> list[RangeSumQuery]:
    """Uniformly random hyper-rectangular range-sums.

    Args:
        shape: Cube domain sizes.
        rng: Random generator.
        count: Number of queries.
        min_width: Smallest per-dimension range width.
        max_width: Largest width (default: the axis size).
        degrees: Monomial measure as in :meth:`RangeSumQuery.weighted`.

    Returns:
        ``count`` queries, every range inside the domain.
    """
    _check_shape(shape)
    if count < 1 or min_width < 1:
        raise QueryError("count and min_width must be >= 1")
    queries = []
    for _ in range(count):
        ranges = []
        for n in shape:
            cap = min(max_width or n, n)
            width = int(rng.integers(min_width, max(min_width, cap) + 1))
            lo = int(rng.integers(0, max(1, n - width + 1)))
            ranges.append((lo, min(n - 1, lo + width - 1)))
        queries.append(RangeSumQuery.weighted(ranges, degrees or {}))
    return queries


def drilldown_ranges(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    count: int = 20,
    spread: int = 4,
) -> list[RangeSumQuery]:
    """Overlapping COUNT ranges clustered on one hot region.

    The locality workload: every query's corners sit within ``spread`` of
    a randomly chosen centre region, so repeated evaluation re-touches the
    same blocks (what the buffer pool exploits).
    """
    _check_shape(shape)
    if spread < 1:
        raise QueryError(f"spread must be >= 1, got {spread}")
    centre = [int(rng.integers(n // 4, 3 * n // 4)) for n in shape]
    queries = []
    for _ in range(count):
        ranges = []
        for c, n in zip(centre, shape):
            lo = int(np.clip(c - int(rng.integers(1, spread + 1)), 0, n - 1))
            hi = int(np.clip(c + int(rng.integers(1, spread + 1)), lo, n - 1))
            ranges.append((lo, hi))
        queries.append(RangeSumQuery.count(ranges))
    return queries


def grid_group_by(
    shape: tuple[int, ...],
    dim: int,
    group_width: int,
    degrees: dict[int, int] | None = None,
) -> list[RangeSumQuery]:
    """The cell queries of a GROUP BY over one dimension (full domain on
    the others) — the related-aggregate batch of §3.3.1."""
    _check_shape(shape)
    if not 0 <= dim < len(shape):
        raise QueryError(f"group-by dimension {dim} out of range")
    if group_width < 1:
        raise QueryError(f"group width must be >= 1, got {group_width}")
    queries = []
    for start in range(0, shape[dim], group_width):
        ranges = []
        for d, n in enumerate(shape):
            if d == dim:
                ranges.append((start, min(n - 1, start + group_width - 1)))
            else:
                ranges.append((0, n - 1))
        queries.append(RangeSumQuery.weighted(ranges, degrees or {}))
    return queries
