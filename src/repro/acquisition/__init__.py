"""Acquisition subsystem: Nyquist estimation, sampling strategies,
compression codecs and per-dimension basis selection (§3.1 of the paper)."""

from repro.acquisition.adpcm import AdpcmBlock, AdpcmCodec
from repro.acquisition.basis_select import BasisChoice, select_bases, select_basis
from repro.acquisition.combined import CombinedResult, compress_sampled
from repro.acquisition.huffman import (
    HuffmanCode,
    build_code,
    compressed_size,
    decode,
    encode,
)
from repro.acquisition.nyquist import (
    estimate_fmax_autocorr,
    estimate_fmax_dft,
    estimate_fmax_mse,
    nyquist_rate,
    required_rates,
)
from repro.acquisition.streaming import StreamingAdaptiveSampler, StreamingStats
from repro.acquisition.sampling import (
    AdaptiveSampler,
    FixedSampler,
    GroupedSampler,
    ModifiedFixedSampler,
    SamplingResult,
)

__all__ = [
    "estimate_fmax_dft",
    "estimate_fmax_autocorr",
    "estimate_fmax_mse",
    "nyquist_rate",
    "required_rates",
    "SamplingResult",
    "FixedSampler",
    "ModifiedFixedSampler",
    "GroupedSampler",
    "AdaptiveSampler",
    "StreamingAdaptiveSampler",
    "StreamingStats",
    "AdpcmCodec",
    "AdpcmBlock",
    "HuffmanCode",
    "build_code",
    "encode",
    "decode",
    "compressed_size",
    "BasisChoice",
    "CombinedResult",
    "compress_sampled",
    "select_basis",
    "select_bases",
]
