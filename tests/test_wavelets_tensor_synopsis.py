"""Tests for tensor transforms and wavelet synopses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import TransformError
from repro.wavelets.synopsis import build_synopsis
from repro.wavelets.tensor import tensor_levels, tensor_wavedec, tensor_waverec


RNG = np.random.default_rng(23)


class TestTensorTransform:
    @pytest.mark.parametrize("shape", [(8,), (8, 16), (4, 8, 4)])
    def test_roundtrip(self, shape):
        cube = RNG.normal(size=shape)
        coeffs = tensor_wavedec(cube, "haar")
        np.testing.assert_allclose(tensor_waverec(coeffs, "haar"), cube, atol=1e-9)

    def test_roundtrip_db2(self):
        cube = RNG.normal(size=(16, 16))
        coeffs = tensor_wavedec(cube, "db2")
        np.testing.assert_allclose(tensor_waverec(coeffs, "db2"), cube, atol=1e-9)

    def test_inner_product_preserved(self):
        """Multivariate Parseval — the multivariate ProPolyne identity."""
        a = RNG.normal(size=(8, 16))
        b = RNG.normal(size=(8, 16))
        wa = tensor_wavedec(a, "db2")
        wb = tensor_wavedec(b, "db2")
        assert float(np.sum(wa * wb)) == pytest.approx(float(np.sum(a * b)))

    def test_separable_query_is_outer_product(self):
        """W(q1 x q2) == (W q1) x (W q2): the fact that makes sparse
        multivariate queries possible."""
        from repro.wavelets.dwt import wavedec

        q1 = np.zeros(8)
        q1[2:6] = 1.0
        q2 = np.zeros(16)
        q2[5:11] = np.arange(5, 11, dtype=float)
        cube = np.outer(q1, q2)
        joint = tensor_wavedec(cube, "db2")
        w1 = wavedec(q1, "db2").to_flat()
        w2 = wavedec(q2, "db2").to_flat()
        np.testing.assert_allclose(joint, np.outer(w1, w2), atol=1e-9)

    def test_partial_levels(self):
        cube = RNG.normal(size=(16, 8))
        coeffs = tensor_wavedec(cube, "haar", levels=(2, 1))
        np.testing.assert_allclose(
            tensor_waverec(coeffs, "haar", levels=(2, 1)), cube, atol=1e-10
        )

    def test_levels_mismatch_rejected(self):
        with pytest.raises(TransformError):
            tensor_wavedec(RNG.normal(size=(8, 8)), "haar", levels=(1,))

    def test_tensor_levels(self):
        from repro.wavelets.filters import get_filter

        assert tensor_levels((64, 8), get_filter("haar")) == (6, 3)


class TestSynopsis:
    def test_full_budget_is_lossless(self):
        cube = RNG.normal(size=(8, 8))
        syn = build_synopsis(cube, budget=64, wavelet="haar")
        np.testing.assert_allclose(syn.reconstruct(), cube, atol=1e-9)
        assert syn.dropped_energy == pytest.approx(0.0, abs=1e-12)

    def test_dropped_energy_equals_reconstruction_error(self):
        cube = RNG.normal(size=(16, 16))
        syn = build_synopsis(cube, budget=40, wavelet="haar")
        err = float(np.sum((syn.reconstruct() - cube) ** 2))
        assert err == pytest.approx(syn.dropped_energy, rel=1e-9)

    def test_smooth_data_compresses_well(self):
        t = np.linspace(0, 1, 64, endpoint=False)
        smooth = np.outer(np.sin(2 * np.pi * t), np.cos(2 * np.pi * t))
        syn = build_synopsis(smooth, budget=64, wavelet="db4")  # 1/64 of coeffs
        rel_err = np.sqrt(syn.dropped_energy / np.sum(smooth**2))
        assert rel_err < 0.05

    def test_random_data_compresses_poorly(self):
        """The dataset-dependence the paper's claim E4 highlights."""
        noise = RNG.normal(size=(64, 64))
        syn = build_synopsis(noise, budget=64, wavelet="db2")
        rel_err = np.sqrt(syn.dropped_energy / np.sum(noise**2))
        assert rel_err > 0.5

    def test_budget_validation(self):
        cube = RNG.normal(size=(4, 4))
        with pytest.raises(TransformError):
            build_synopsis(cube, budget=0)
        with pytest.raises(TransformError):
            build_synopsis(cube, budget=17)

    def test_size_property(self):
        syn = build_synopsis(RNG.normal(size=16), budget=5, wavelet="haar")
        assert syn.size == 5

    @settings(max_examples=20, deadline=None)
    @given(budget=st.integers(1, 64), seed=st.integers(0, 100))
    def test_error_monotone_in_budget(self, budget, seed):
        rng = np.random.default_rng(seed)
        cube = rng.normal(size=(8, 8))
        small = build_synopsis(cube, budget=budget, wavelet="haar")
        big = build_synopsis(cube, budget=min(64, budget + 8), wavelet="haar")
        assert big.dropped_energy <= small.dropped_energy + 1e-9

    def test_dot_sparse_matches_dense(self):
        cube = RNG.normal(size=(8, 8))
        syn = build_synopsis(cube, budget=20, wavelet="haar")
        query = {(2, 3): 1.5, (0, 0): -0.5, (7, 7): 2.0}
        dense = syn.coefficient_array()
        expected = sum(v * dense[idx] for idx, v in query.items())
        assert syn.dot_sparse(query) == pytest.approx(expected)

    def test_dot_sparse_float_identical_to_dense_gather(self):
        # The vectorized path (cached strides, one gather, one np.dot)
        # must reduce exactly like the dense-gather reference — float
        # identity, not approx.
        rng = np.random.default_rng(5)
        cube = rng.normal(size=(8, 8))
        syn = build_synopsis(cube, budget=20, wavelet="haar")
        query = {
            (int(i), int(j)): float(rng.normal())
            for i, j in rng.integers(0, 8, size=(17, 2))
        }
        flat = syn.coefficient_array().ravel()
        qvals = np.fromiter(query.values(), dtype=float, count=len(query))
        idx = np.array([i * 8 + j for i, j in query])
        reference = float(np.dot(qvals, flat[idx]))
        assert syn.dot_sparse(query) == reference

    def test_dot_sparse_empty_query_and_dropped_entries(self):
        cube = RNG.normal(size=(8, 8))
        syn = build_synopsis(cube, budget=4, wavelet="haar")
        assert syn.dot_sparse({}) == 0.0
        dropped = [
            divmod(i, 8) for i in range(64) if i not in syn.entries
        ]
        only_dropped = {dropped[0]: 3.0, dropped[1]: -2.0}
        assert syn.dot_sparse(only_dropped) == 0.0

    def test_coefficient_array_copies_stay_independent(self):
        cube = RNG.normal(size=(8, 8))
        syn = build_synopsis(cube, budget=20, wavelet="haar")
        first = syn.coefficient_array()
        first[0, 0] = 123.0  # caller-side mutation must not leak back
        second = syn.coefficient_array()
        assert second[0, 0] != 123.0 or syn.entries.get(0) == 123.0
