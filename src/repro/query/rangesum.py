"""Polynomial range-sum queries over multidimensional data cubes.

ProPolyne's data model (§3.3): a relation with ``d`` attributes is a
``d``-dimensional *frequency cube* — ``cube[x1, .., xd]`` counts the
tuples with those attribute values — and every aggregate of interest is a
**polynomial range-sum**

    Q(R, f) = sum_{x in R} f(x) * cube[x]

over a hyper-rectangular range ``R`` with a *separable* polynomial measure
``f(x) = f1(x1) * ... * fd(xd)``.  COUNT, SUM, AVERAGE, VARIANCE and
COVARIANCE all reduce to a handful of such sums ("treats all dimensions,
including measure dimensions, symmetrically").

This module defines the query value type plus the dense reference
evaluator the wavelet-domain engine is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import QueryError

__all__ = ["RangeSumQuery", "evaluate_on_cube", "relation_to_cube"]


@dataclass(frozen=True)
class RangeSumQuery:
    """One polynomial range-sum.

    Attributes:
        ranges: Per-dimension inclusive ``(lo, hi)`` index ranges.
        polys: Per-dimension measure polynomials as ascending coefficient
            tuples; ``(1.0,)`` (constant one) for dimensions that only
            constrain the range.
    """

    ranges: tuple[tuple[int, int], ...]
    polys: tuple[tuple[float, ...], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.ranges:
            raise QueryError("a range-sum query needs at least one dimension")
        polys = self.polys or tuple((1.0,) for _ in self.ranges)
        if len(polys) != len(self.ranges):
            raise QueryError(
                f"{len(self.polys)} measure polynomials for "
                f"{len(self.ranges)} dimensions"
            )
        for d, ((lo, hi), poly) in enumerate(zip(self.ranges, polys)):
            if lo < 0:
                raise QueryError(f"dimension {d}: negative range start {lo}")
            if not poly:
                raise QueryError(f"dimension {d}: empty measure polynomial")
        object.__setattr__(self, "polys", polys)

    @property
    def ndim(self) -> int:
        """Number of query dimensions."""
        return len(self.ranges)

    @property
    def max_degree(self) -> int:
        """Highest polynomial degree across dimensions — determines the
        vanishing moments the evaluation filter needs."""
        return max(len(p) - 1 for p in self.polys)

    def is_empty(self) -> bool:
        """True when any dimension's range is empty."""
        return any(hi < lo for lo, hi in self.ranges)

    @classmethod
    def count(cls, ranges: list[tuple[int, int]]) -> "RangeSumQuery":
        """COUNT over a range: all measure polynomials constant one."""
        return cls(ranges=tuple(ranges))

    @classmethod
    def weighted(
        cls, ranges: list[tuple[int, int]], degree_per_dim: dict[int, int]
    ) -> "RangeSumQuery":
        """Monomial measure: ``prod_d x_d ** degree_per_dim.get(d, 0)``.

        E.g. ``degree_per_dim={2: 1}`` is SUM of attribute 2;
        ``{2: 2}`` is SUM of its square; ``{1: 1, 2: 1}`` is
        SUM(x1 * x2) — the covariance building block.
        """
        polys = []
        for d in range(len(ranges)):
            degree = degree_per_dim.get(d, 0)
            if degree < 0:
                raise QueryError(f"dimension {d}: negative degree {degree}")
            poly = [0.0] * degree + [1.0]
            polys.append(tuple(poly))
        return cls(ranges=tuple(ranges), polys=tuple(polys))


def evaluate_on_cube(cube: np.ndarray, query: RangeSumQuery) -> float:
    """Dense reference evaluation: materialize the weights and sum.

    O(volume of the range); used as ground truth in tests and as the
    "relational" cost baseline in the hybrid experiment.
    """
    data = np.asarray(cube, dtype=float)
    if data.ndim != query.ndim:
        raise QueryError(
            f"cube has {data.ndim} dimensions, query has {query.ndim}"
        )
    if query.is_empty():
        return 0.0
    slices = []
    weights = []
    for d, ((lo, hi), poly) in enumerate(zip(query.ranges, query.polys)):
        if hi >= data.shape[d]:
            raise QueryError(
                f"dimension {d}: range [{lo}, {hi}] exceeds size "
                f"{data.shape[d]}"
            )
        slices.append(slice(lo, hi + 1))
        idx = np.arange(lo, hi + 1, dtype=float)
        weights.append(np.polynomial.polynomial.polyval(idx, np.asarray(poly)))
    region = data[tuple(slices)]
    weight = weights[0]
    for w in weights[1:]:
        weight = np.multiply.outer(weight, w)
    return float(np.sum(region * weight))


def relation_to_cube(
    rows: np.ndarray, shape: tuple[int, ...]
) -> np.ndarray:
    """Build the frequency cube of an integer-attribute relation.

    Args:
        rows: ``(n_tuples, d)`` integer array of attribute values.
        shape: Domain size per attribute.

    Returns:
        A ``shape``-shaped cube of tuple counts.
    """
    data = np.asarray(rows)
    if data.ndim != 2 or data.shape[1] != len(shape):
        raise QueryError(
            f"relation shape {data.shape} incompatible with cube "
            f"shape {shape}"
        )
    if np.any(data < 0):
        raise QueryError("attribute values must be non-negative")
    for d, size in enumerate(shape):
        if np.any(data[:, d] >= size):
            raise QueryError(
                f"dimension {d}: attribute value out of domain [0, {size})"
            )
    cube = np.zeros(shape)
    np.add.at(cube, tuple(data[:, d] for d in range(len(shape))), 1.0)
    return cube
