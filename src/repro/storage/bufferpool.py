"""An LRU buffer pool over the simulated disk.

Locality of reference only pays off through a cache: the paper's argument
for packing dependent coefficients together (§3.2.1) is that "when an
application needs to access one datum on a disk block, it is likely to
need to access other data on the same block", amortizing the I/O.  The
pool makes that amortization observable: hits are free, misses cost a
device read.

Coherence and copies: the pool registers itself with its device, so any
:meth:`~repro.storage.disk.SimulatedDisk.write_block` — whether issued
through a block store or directly — invalidates the cached copy
(write-through invalidation; no stale reads).  Cached entries are the
device's own immutable payloads (one shared instance, never mutated in
place), and callers always receive a fresh copy, so a pool read costs
exactly one dictionary copy whether it hits or misses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from repro.core.errors import StorageError
from repro.obs import counter as obs_counter
from repro.obs.stats import StatsBase
from repro.storage.disk import SimulatedDisk

__all__ = ["BufferPool", "PoolStats"]


@dataclass
class PoolStats(StatsBase):
    """Hit/miss/eviction/invalidation counters.

    Shares the ``reset``/``snapshot``/``delta`` protocol of
    :class:`repro.obs.stats.StatsBase`, so pool activity can be
    differenced before/after a workload exactly like device I/O.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferPool:
    """Fixed-capacity LRU cache of disk blocks.

    Args:
        disk: Backing device.  The pool registers itself with it for
            write-through invalidation.
        capacity: Number of blocks held in memory.
    """

    def __init__(self, disk: SimulatedDisk, capacity: int) -> None:
        if capacity <= 0:
            raise StorageError(f"pool capacity must be positive, got {capacity}")
        self._disk = disk
        self._capacity = capacity
        self._cache: OrderedDict[Hashable, dict] = OrderedDict()
        self.stats = PoolStats()
        disk.attach_cache(self)

    def read_block(self, block_id: Hashable) -> dict:
        """Fetch a block through the cache.

        The returned dictionary is always a fresh copy — mutating it
        never corrupts the cached (or on-device) payload.
        """
        cached = self._cache.get(block_id)
        if cached is not None:
            self._cache.move_to_end(block_id)
            self.stats.hits += 1
            obs_counter("storage.pool.hits").inc()
            return dict(cached)
        # The device's payload is immutable-by-contract, so it can be the
        # cache entry itself: one copy per miss (for the caller), not two.
        block = self._disk.read_block_shared(block_id)
        self.stats.misses += 1
        obs_counter("storage.pool.misses").inc()
        self._cache[block_id] = block
        if len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
            obs_counter("storage.pool.evictions").inc()
        return dict(block)

    def invalidate(self, block_id: Hashable) -> None:
        """Drop a cached block (called automatically on device writes)."""
        if self._cache.pop(block_id, None) is not None:
            self.stats.invalidations += 1
            obs_counter("storage.pool.invalidations").inc()

    def clear(self) -> None:
        """Empty the cache (statistics are kept)."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
