"""Tests for session record/replay (repro.streams.replay).

The headline contract: replaying a recorded session into an engine
seeded with the same starting state leaves **bitwise-identical** stored
coefficients — regardless of replay commit grouping, because the batch
append kernel is order-preserving.  Around it: the JSON-lines record
format round-trips exactly, coordinator degradations land in the log
as ``rate_change`` events, empty sessions replay as no-ops, pacing
honours the speed knob deterministically (injected clock/sleep), and a
replay onto a faulty stack stays degraded-but-auditable.
"""

import numpy as np
import pytest

from repro.acquisition.streaming import StreamingAdaptiveSampler
from repro.core.errors import StreamError
from repro.faults.breaker import CircuitBreaker
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.obs import MetricsRegistry, use_registry
from repro.query.explain import attach_provenance
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery
from repro.storage.device import StorageSpec
from repro.streams import BandwidthCoordinator, IngestService
from repro.streams.replay import (
    REPLAY_SCHEMA,
    ReplayEvent,
    SessionRecord,
    SessionRecorder,
    SessionReplayer,
)

RNG = np.random.default_rng(53)
WIDTH = 4


def _engine(shape=(16, 16), **kwargs):
    return ProPolyneEngine(
        np.zeros(shape), max_degree=1, block_size=5, **kwargs
    )


def _to_point(sample):
    return (
        int(sample.sensor_id) % 16,
        int(min(15, abs(sample.value) * 4)),
    )


def _record_session(engine, pushes=60, recorder=None, session_id="s1"):
    """Drive one recorded session through a live ingest service."""
    recorder = recorder if recorder is not None else SessionRecorder()
    sampler = StreamingAdaptiveSampler(width=WIDTH, rate_hz=32.0)
    rng = np.random.default_rng(11)
    with IngestService(
        engine, queue_capacity=512, commit_batch=16, recorder=recorder
    ) as service:
        session = service.open_session(session_id, sampler, _to_point)
        for _ in range(pushes):
            session.push(rng.normal(size=WIDTH))
        session.close()
        service.flush()
    return recorder.record(session_id)


class TestRecordFormat:
    def test_json_lines_round_trip_is_exact(self):
        record = _record_session(_engine())
        assert record.points > 0
        rt = SessionRecord.from_json(record.to_json())
        assert rt.to_json() == record.to_json()
        assert rt.events == record.events
        assert rt.closed

    def test_save_and_load(self, tmp_path):
        record = _record_session(_engine())
        path = record.save(tmp_path / "s1.replay.jsonl")
        loaded = SessionRecord.load(path)
        assert loaded.to_json() == record.to_json()

    def test_header_summarises_the_log(self):
        record = _record_session(_engine())
        header = record.header()
        assert header["schema"] == REPLAY_SCHEMA
        assert header["session_id"] == "s1"
        assert header["rate_hz"] == 32.0
        assert header["events"] == len(record.events)
        assert header["points"] == record.points
        assert header["closed"] is True

    def test_bad_schema_and_empty_text_rejected(self):
        with pytest.raises(StreamError):
            SessionRecord.from_json("")
        with pytest.raises(StreamError):
            SessionRecord.from_json('{"schema": "bogus/v9"}\n')

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(StreamError):
            ReplayEvent.from_dict({"kind": "mystery", "t": 0.0})


class TestRecorder:
    def test_double_begin_rejected(self):
        recorder = SessionRecorder()
        sampler = StreamingAdaptiveSampler(width=WIDTH, rate_hz=32.0)
        recorder.begin("dup", sampler)
        with pytest.raises(StreamError):
            recorder.begin("dup", sampler)

    def test_pushes_after_end_are_ignored(self):
        recorder = SessionRecorder()
        sampler = StreamingAdaptiveSampler(width=WIDTH, rate_hz=32.0)
        recorder.begin("s", sampler)
        recorder.end("s")
        samples = sampler.push(np.zeros(WIDTH))
        recorder.on_push(
            "s", sampler, samples,
            [_to_point(s) for s in samples], [1.0] * len(samples),
        )
        assert recorder.record("s").points == 0

    def test_pop_is_retention_hygiene(self):
        record = _record_session(_engine())
        recorder = SessionRecorder()
        recorder._records["s1"] = record  # seed directly
        recorder._last_caps["s1"] = None
        recorder._last_t["s1"] = 0.0
        assert recorder.sessions() == ["s1"]
        assert recorder.pop("s1") is record
        assert recorder.sessions() == []
        with pytest.raises(StreamError):
            recorder.record("s1")

    def test_recorder_metrics(self):
        with use_registry(MetricsRegistry()) as reg:
            record = _record_session(_engine())
            assert reg.counter("replay.recorded_sessions").value == 1
            assert (
                reg.counter("replay.recorded_points").value
                == record.points
            )

    def test_coordinator_degradation_lands_as_rate_change(self):
        engine = _engine()
        recorder = SessionRecorder()
        coord = BandwidthCoordinator(
            sustain_ticks=1, degrade_factor=0.5, min_scale=0.25
        )
        sampler = StreamingAdaptiveSampler(width=WIDTH, rate_hz=32.0)
        rng = np.random.default_rng(13)
        with IngestService(
            engine, queue_capacity=512, commit_batch=16,
            recorder=recorder, coordinator=coord, poll_seconds=60.0,
        ) as service:
            session = service.open_session("deg", sampler, _to_point)
            for _ in range(10):
                session.push(rng.normal(size=WIDTH))
            coord.observe(0.95)  # sustained pressure: degrade now
            assert coord.degraded
            for _ in range(10):
                session.push(rng.normal(size=WIDTH))
            coord.observe(0.05)  # drained: restore
            for _ in range(10):
                session.push(rng.normal(size=WIDTH))
            session.close()
            service.flush()
        record = recorder.record("deg")
        assert record.rate_changes >= 2  # degradation + restoration
        caps = [
            e.max_rate_hz for e in record.events
            if e.kind == "rate_change"
        ]
        assert caps[0] == pytest.approx(16.0)
        assert caps[-1] is None


class TestReplayFidelity:
    def test_replay_is_bitwise_identical(self):
        original = _engine()
        record = _record_session(original, pushes=80)
        twin = _engine()
        applied = SessionReplayer(record).replay_into(twin, commit_batch=37)
        assert applied == record.points
        assert (
            twin.to_coefficients().tobytes()
            == original.to_coefficients().tobytes()
        )

    def test_commit_grouping_does_not_matter(self):
        record = _record_session(_engine(), pushes=40)
        coeffs = []
        for commit_batch in (1, 7, 1024):
            twin = _engine()
            SessionReplayer(record).replay_into(
                twin, commit_batch=commit_batch
            )
            coeffs.append(twin.to_coefficients().tobytes())
        assert coeffs[0] == coeffs[1] == coeffs[2]

    def test_empty_session_replays_as_noop(self):
        record = SessionRecord(session_id="empty", rate_hz=32.0)
        twin = _engine()
        before = twin.to_coefficients().tobytes()
        assert SessionReplayer(record).replay_into(twin) == 0
        assert list(SessionReplayer(record).events()) == []
        assert twin.to_coefficients().tobytes() == before

    def test_replay_through_a_live_service(self):
        record = _record_session(_engine(), pushes=40)
        twin = _engine()
        with IngestService(twin, commit_batch=8) as service:
            submitted = SessionReplayer(record).replay_through(service)
            service.flush()
        assert submitted == record.points
        assert service.committed_points == record.points

    def test_replay_validation(self):
        record = SessionRecord(session_id="x")
        with pytest.raises(StreamError):
            SessionReplayer(record, speed=0.0)
        with pytest.raises(StreamError):
            SessionReplayer(record).replay_into(_engine(), commit_batch=0)


class TestPacing:
    def _paced_waits(self, record, speed):
        clock = {"now": 0.0}
        waits = []

        def fake_clock():
            return clock["now"]

        def fake_sleep(seconds):
            waits.append(seconds)
            clock["now"] += seconds

        replayer = SessionReplayer(
            record, speed=speed, clock=fake_clock, sleep=fake_sleep
        )
        events = list(replayer.events())
        return events, waits

    def _record(self):
        return SessionRecord(
            session_id="p",
            rate_hz=4.0,
            events=[
                ReplayEvent(kind="point", t=0.0, point=(0, 0), weight=1.0),
                ReplayEvent(kind="point", t=0.5, point=(1, 1), weight=1.0),
                ReplayEvent(kind="point", t=1.0, point=(2, 2), weight=1.0),
            ],
        )

    def test_real_time_pacing(self):
        events, waits = self._paced_waits(self._record(), speed=1.0)
        assert len(events) == 3
        assert waits == [pytest.approx(0.5), pytest.approx(0.5)]

    def test_double_speed_halves_waits(self):
        _, waits = self._paced_waits(self._record(), speed=2.0)
        assert waits == [pytest.approx(0.25), pytest.approx(0.25)]

    def test_half_speed_doubles_waits(self):
        _, waits = self._paced_waits(self._record(), speed=0.5)
        assert waits == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_as_fast_as_possible_never_sleeps(self):
        _, waits = self._paced_waits(self._record(), speed=None)
        assert waits == []


class TestDegradedButAuditable:
    def test_replay_onto_faulty_stack_keeps_audit_trail(self):
        # Replay lands cleanly (injection off), then shard 0 dies: the
        # replayed history answers degradable queries with an explicit
        # bound and a provenance trail naming the open breaker.
        record = _record_session(_engine(), pushes=60)
        twin = _engine(
            storage=StorageSpec(
                shards=2,
                fault_plan=FaultPlan(seed=3, read_error_rate=1.0),
                fault_shards=(0,),
                retry_policy=RetryPolicy(
                    max_attempts=2, base_delay_s=0.0, budget_s=0.0
                ),
                breaker=CircuitBreaker(
                    failure_threshold=1, recovery_timeout_s=60.0
                ),
            )
        )
        twin.store.set_injecting(False)
        SessionReplayer(record).replay_into(twin)
        twin.store.set_injecting(True)
        query = RangeSumQuery.count([(2, 11), (3, 14)])
        outcome = twin.evaluate_degradable(query)
        assert outcome.degraded
        assert outcome.reason == "storage_unavailable"
        assert outcome.error_bound > 0.0
        outcome = attach_provenance(twin, query, outcome)
        prov = outcome.provenance
        assert prov.degraded is True
        assert "open" in prov.breaker_states.values()
        assert prov.blocks_by_shard  # the plan is part of the audit


class TestReplayMetrics:
    def test_replay_counters(self):
        record = _record_session(_engine(), pushes=40)
        with use_registry(MetricsRegistry()) as reg:
            twin = _engine()
            SessionReplayer(record, speed=None).replay_into(twin)
            assert reg.counter("replay.sessions").value == 1
            assert reg.counter("replay.points").value == record.points
            assert reg.counter("replay.events").value == len(record.events)
            assert reg.gauge("replay.speed").value == 0.0
