"""Command-line front end for the AIMS reproduction.

Usage::

    python -m repro.cli glove --duration 10          # simulate + sample
    python -m repro.cli adhd --subjects 20           # run the §2.1 study
    python -m repro.cli asl --signs GREEN RED HELLO  # stream recognition
    python -m repro.cli olap                         # Fig. 4 pivot demo
    python -m repro.cli chaos --fault-rate 0.05      # resilience drill
    python -m repro.cli stats                        # observability report
    python -m repro.cli lint --format json           # invariant linter
    python -m repro.cli info                         # system inventory

Each subcommand is a thin wrapper over the public API, so the CLI doubles
as executable documentation.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.sensors.model import CYBERGLOVE_SENSORS, HAND_RIG_SENSORS

    print(f"repro {repro.__version__} — AIMS (CIDR 2003) reproduction")
    print(f"subsystems: acquisition, storage, off-line query (ProPolyne), "
          f"online query (weighted SVD)")
    print(f"hand rig: {len(HAND_RIG_SENSORS)} sensors "
          f"({len(CYBERGLOVE_SENSORS)} CyberGlove + 6 Polhemus)")
    print("see DESIGN.md for the full inventory, EXPERIMENTS.md for the "
          "paper-vs-measured comparison")
    return 0


def _cmd_glove(args: argparse.Namespace) -> int:
    from repro import AIMS, AIMSConfig
    from repro.sensors.glove import CyberGloveSimulator

    rng = np.random.default_rng(args.seed)
    system = AIMS(AIMSConfig(sampler=args.sampler))
    sim = CyberGloveSimulator()
    session = sim.capture(args.duration, rng)
    report = system.acquire(session, sim.rate_hz)
    raw = session.size * 4
    print(f"session: {session.shape[0]} frames x {session.shape[1]} sensors")
    print(f"strategy {args.sampler!r}: {report.bytes_recorded} bytes "
          f"({report.bytes_recorded / raw:.1%} of raw), "
          f"NRMSE {report.nrmse:.4f}")
    return 0


def _cmd_adhd(args: argparse.Namespace) -> int:
    from repro.analysis.features import cohort_features
    from repro.analysis.svm import SVM
    from repro.analysis.validation import cross_validate
    from repro.sensors.classroom import generate_cohort

    rng = np.random.default_rng(args.seed)
    cohort = generate_cohort(args.subjects, rng, duration=args.duration)
    x, y = cohort_features(cohort)
    result = cross_validate(lambda: SVM(c=1.0), x, y, k=min(5, args.subjects))
    print(f"{2 * args.subjects} subjects, {args.duration:.0f}s sessions")
    print(f"SVM on tracker motion speed: "
          f"{result['mean_accuracy']:.1%} +/- {result['std_accuracy']:.1%} "
          f"({int(result['folds'])}-fold CV)   [paper: ~86%]")
    return 0


def _cmd_asl(args: argparse.Namespace) -> int:
    from repro import AIMS
    from repro.online.recognizer import RecognizerConfig
    from repro.sensors.asl import (
        ASL_VOCABULARY,
        synthesize_session,
        synthesize_sign,
    )

    by_name = {s.name: s for s in ASL_VOCABULARY}
    unknown = [n for n in args.signs if n not in by_name]
    if unknown:
        print(f"unknown signs {unknown}; available: {sorted(by_name)}",
              file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    specs = [by_name[n] for n in args.signs]
    system = AIMS()
    system.train_vocabulary(
        {s.name: [synthesize_sign(s, rng).frames for _ in range(4)]
         for s in specs}
    )
    frames, segments = synthesize_session(specs, rng, gap_duration=0.8)
    recognizer = system.recognizer(
        rest_frames=frames[: segments[0].start],
        config=RecognizerConfig(window=50, compare_every=10,
                                declare_threshold=0.4, decline_steps=3),
    )
    detections = recognizer.process(frames)
    print(f"truth   : {[s.name for s in segments]}")
    print(f"detected: {[d.name for d in detections]}")
    return 0


def _cmd_olap(args: argparse.Namespace) -> int:
    from repro import AIMS
    from repro.query.rangesum import RangeSumQuery, relation_to_cube
    from repro.sensors.atmosphere import atmospheric_cube

    rng = np.random.default_rng(args.seed)
    field = atmospheric_cube((32, 32), rng)
    t_lo, t_hi = field.min(), field.max()
    bins = np.clip(np.round((field - t_lo) / (t_hi - t_lo) * 31), 0, 31).astype(int)
    lat, lon = np.meshgrid(np.arange(32), np.arange(32), indexing="ij")
    cube = relation_to_cube(
        np.column_stack([lat.ravel(), lon.ravel(), bins.ravel()]),
        (32, 32, 32),
    )
    system = AIMS()
    engine = system.populate("atm", cube)
    query = RangeSumQuery.count([(8, 23), (4, 27), (12, 31)])
    exact = engine.evaluate_exact(query)
    print(f"progressive COUNT over a temperate region (exact {exact:.0f}):")
    for est in engine.evaluate_progressive(query):
        if est.blocks_read in (1, 2, 4, 8, 16, 32):
            print(f"  {est.blocks_read:3d} blocks: {est.estimate:9.1f} "
                  f"+/- {est.error_bound:8.1f}")
        if est.error_bound < 0.01 * max(abs(exact), 1.0):
            print(f"  1%-guarantee reached after {est.blocks_read} blocks")
            break
    return 0


def _atmospheric_count_cube(rng: np.random.Generator, n: int) -> np.ndarray:
    """A small quantized atmospheric frequency cube (shared demo fixture)."""
    from repro.query.rangesum import relation_to_cube
    from repro.sensors.atmosphere import atmospheric_cube

    field = atmospheric_cube((n, n), rng)
    lo, hi = field.min(), field.max()
    bins = np.clip(
        np.round((field - lo) / (hi - lo) * (n - 1)), 0, n - 1
    ).astype(int)
    lat, lon = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return relation_to_cube(
        np.column_stack([lat.ravel(), lon.ravel(), bins.ravel()]), (n, n, n)
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Chaos drill: degradable queries against a fault-injected store.

    Exercises the whole resilience stack — fault-injecting device
    middleware, retries, per-shard circuit breakers, and graceful
    degradation — with storage built from one declarative
    :class:`~repro.storage.device.StorageSpec` (``--shards`` /
    ``--cache-blocks`` / ``--fault-rate``).  Always exits 0: a degraded
    answer with an error bound is the designed behaviour, not a
    failure.
    """
    from repro import AIMS, AIMSConfig
    from repro.faults import CircuitBreaker, FaultPlan, RetryPolicy
    from repro.obs import counter as obs_counter
    from repro.query.rangesum import RangeSumQuery

    rate = args.fault_rate
    if not 0.0 <= rate <= 0.5:
        print(f"--fault-rate must be in [0, 0.5], got {rate}",
              file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    n = 16
    cube = _atmospheric_count_cube(rng, n)
    plan = FaultPlan(
        seed=args.seed,
        read_error_rate=rate,
        torn_rate=rate / 2,
        latency_spike_rate=rate / 2,
        latency_spike_s=0.001,
    )
    breaker = CircuitBreaker(failure_threshold=5, recovery_timeout_s=0.05)
    system = AIMS(
        AIMSConfig(pool_capacity=args.cache_blocks, shards=args.shards)
    )
    engine = system.populate(
        "chaos", cube,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.0005),
        breaker=breaker,
    )
    queries = [
        RangeSumQuery.count([(s, min(s + 5, n - 1)), (0, n - 1), (2, 13)])
        for s in range(0, n, 2)
    ] * max(1, args.queries // (n // 2))
    degraded = 0
    for query in queries:
        outcome = engine.evaluate_degradable(query, deadline_s=args.deadline)
        if outcome.degraded:
            degraded += 1
    print(f"chaos drill: {len(queries)} degradable queries at "
          f"{rate:.0%} read-fault rate")
    print(f"  storage spec    : {args.shards} shard(s), "
          f"{args.cache_blocks} cache blocks")
    print(f"  degraded        : {degraded}/{len(queries)} "
          f"(each with a guaranteed error bound)")
    print(f"  retries/recovers: {obs_counter('retry.retries').value:.0f}/"
          f"{obs_counter('retry.recoveries').value:.0f}")
    print(f"  injected faults : "
          f"{obs_counter('faults.injected.read_errors').value:.0f} read, "
          f"{obs_counter('faults.injected.torn_blocks').value:.0f} torn, "
          f"{obs_counter('faults.injected.latency_spikes').value:.0f} slow")
    breakers = engine.store.breakers or [breaker]
    snap = breakers[0].snapshot()
    trips = sum(b.snapshot()["trips"] for b in breakers)
    rejections = sum(b.snapshot()["rejections"] for b in breakers)
    state = next(
        (b.state for b in breakers if b.state != "closed"), snap["state"]
    )
    print(f"  breaker         : {state} "
          f"(trips={trips:.0f}, rejections={rejections:.0f})")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Murder-tier drill: routing, hot-tenant quotas, replica failover.

    Stands up the multi-tenant cluster tier through the
    ``AIMS.cluster()`` facade — stateless frontend, consistent-hash
    ring, data-owning backends — populates tenant datasets, then
    demonstrates the tier's properties in order: deterministic routing,
    per-tenant quota isolation under a flooding tenant, and a
    kill-primary drill in which replica promotion restores
    bitwise-exact answers.  Exits 1 only if a post-failover answer
    diverges from the healthy baseline.
    """
    from repro import AIMS, AIMSConfig
    from repro.cluster import QuotaExceeded, TenantQuota, namespace_key
    from repro.faults import CircuitBreaker, FaultPlan, RetryPolicy
    from repro.obs import counter as obs_counter
    from repro.obs import gauge as obs_gauge
    from repro.query.rangesum import RangeSumQuery
    from repro.storage.device import StorageSpec

    if args.backends < 1:
        print(f"--backends must be >= 1, got {args.backends}",
              file=sys.stderr)
        return 2
    if args.quota < 1:
        print(f"--quota must be >= 1, got {args.quota}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    n = 16
    cube = _atmospheric_count_cube(rng, n)
    queries = [
        RangeSumQuery.count([(s, min(s + 5, n - 1)), (0, n - 1), (2, 13)])
        for s in range(0, n, 2)
    ]
    tenants = [("acme", "gloves"), ("acme", "asl"),
               ("globex", "atmosphere"), ("initech", "sessions")]
    system = AIMS(AIMSConfig(shards=2, replicas=1))
    with system.cluster(backends=args.backends) as frontend:
        for tenant, dataset in tenants:
            frontend.populate(tenant, dataset, cube)
        keys = [namespace_key(t, d) for t, d in tenants]
        spread = frontend.ring.spread(keys)
        print(f"cluster drill: {args.backends} backend(s), "
              f"{len(tenants)} namespaces, vnodes={frontend.ring.vnodes}")
        for node_id in frontend.backends():
            owned = [k for k in keys if frontend.ring.lookup(k) == node_id]
            print(f"  {node_id:<12}: owns "
                  f"{', '.join(owned) if owned else '(nothing yet)'}")

        # Mixed workload: every namespace answers its exact queries.
        futures = [
            ((tenant, dataset), frontend.submit_exact(tenant, dataset, q))
            for tenant, dataset in tenants for q in queries
        ]
        baseline: dict[tuple, list] = {}
        for key, future in futures:
            baseline.setdefault(key, []).append(future.result())
        print(f"  workload      : {len(futures)} exact queries answered "
              f"across {len(tenants)} namespaces")

        # Hot tenant: flood one tenant past its quota.  Its excess is
        # rejected at the frontend; bystanders keep being served.
        frontend.populate("noisy", "flood", cube)
        frontend.set_quota("noisy", TenantQuota(max_inflight=args.quota))
        rejected = 0
        flood = []
        for _ in range(args.flood):
            try:
                flood.append(
                    frontend.submit_batch("noisy", "flood", queries)
                )
            except QuotaExceeded:
                rejected += 1
        bystanders = [
            frontend.submit_exact("acme", "gloves", q) for q in queries
        ]
        for future in bystanders:
            future.result()
        for future in flood:
            future.result()
        print(f"  hot tenant    : {rejected}/{args.flood} flood batches "
              f"rejected at quota {args.quota}; {len(bystanders)} "
              f"bystander queries still answered")

        # Kill-primary drill: every primary read in the drill namespace
        # fails, breakers trip, replicas are promoted — and the answers
        # stay bitwise-exact (failover, not degradation).
        drill_spec = StorageSpec(
            shards=2,
            replicas=1,
            cache_blocks=4,
            fault_plan=FaultPlan(seed=args.seed, read_error_rate=1.0),
            fault_replicas=(0,),
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0,
                                     budget_s=0.0),
            breaker=CircuitBreaker(failure_threshold=3,
                                   recovery_timeout_s=60.0),
        )
        frontend.populate("ops", "drill", cube, storage=drill_spec)
        before = obs_counter("replica.promotions").value
        drilled = [
            frontend.submit_exact("ops", "drill", q).result()
            for q in queries
        ]
        promotions = obs_counter("replica.promotions").value - before
        exact = drilled == baseline[("acme", "gloves")]
        print(f"  kill-primary  : {promotions:.0f} promotion(s); "
              f"answers bitwise-exact: {exact}")
        print(f"  replica       : "
              f"failovers={obs_counter('replica.failovers').value:.0f}, "
              f"member read failures="
              f"{obs_counter('replica.member_read_failures').value:.0f}, "
              f"stale members="
              f"{obs_gauge('replica.stale_members').value:.0f}")
        print(f"  frontend      : "
              f"routed={obs_counter('cluster.frontend.routed').value:.0f}, "
              f"quota rejected="
              f"{obs_counter('cluster.frontend.quota_rejected').value:.0f}")
        return 0 if exact else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run a representative end-to-end pass and print the metrics report."""
    from repro import AIMS, AIMSConfig
    from repro.obs import render_text, to_json
    from repro.query.rangesum import RangeSumQuery
    from repro.sensors.glove import CyberGloveSimulator

    rng = np.random.default_rng(args.seed)
    system = AIMS(AIMSConfig(pool_capacity=32))

    # Acquisition: capture and sample a short glove session.
    sim = CyberGloveSimulator()
    session = sim.capture(2.0, rng)
    system.acquire(session, sim.rate_hz)

    # Storage + off-line query: populate a cube, run exact, progressive
    # and derived-aggregate queries through the caching device layer.
    n = 16
    cube = _atmospheric_count_cube(rng, n)
    engine = system.populate("atm", cube)
    query = RangeSumQuery.count([(2, 13), (1, 12), (4, 15)])
    engine.evaluate_exact(query)
    for est in engine.evaluate_progressive(query):
        if est.error_bound < 1.0:
            break
    agg = system.aggregates("atm")
    agg.average([(0, n - 1), (0, n - 1), (0, n - 1)], dim=2)
    agg.variance([(0, n - 1), (0, n - 1), (0, n - 1)], dim=2)

    # Concurrent query service: a group-by burst through the thread-pool
    # front end, so the service, shared-scan, translation-cache and
    # pool-occupancy series all appear in the report.
    from repro.query.service import QueryService

    cells = [
        RangeSumQuery.count([(s, min(s + 3, n - 1)), (0, n - 1), (2, 13)])
        for s in range(0, n, 4)
    ]
    with QueryService(
        engine,
        workers=2,
        queue_depth=len(cells),
        execution_mode=args.service_mode,
    ) as service:
        service.run_exact(cells)
        service.run_exact(cells)  # repeat pass: translation-cache hits

    # Online query: recognize a short synthesized sign stream.
    from repro.online.recognizer import RecognizerConfig
    from repro.sensors.asl import ASL_VOCABULARY, synthesize_session, synthesize_sign

    specs = list(ASL_VOCABULARY[:2])
    system.train_vocabulary(
        {s.name: [synthesize_sign(s, rng).frames for _ in range(3)]
         for s in specs}
    )
    frames, segments = synthesize_session(specs, rng, gap_duration=0.6)
    recognizer = system.recognizer(
        rest_frames=frames[: segments[0].start],
        config=RecognizerConfig(window=50, compare_every=10,
                                declare_threshold=0.4, decline_steps=3),
    )
    # Feed the session through the stream substrate so ingest counters
    # tick exactly as they would for a live device.
    from repro.streams.source import ArraySource

    recognizer.process(ArraySource(frames, rate_hz=60.0))

    # Resilience: a short drill against a 4-shard fault-injected device
    # stack declared as one StorageSpec, so the faults.* / retry.* /
    # breaker.* series appear in the report (see docs/OPERATIONS.md for
    # how to read them under load).
    from repro.faults import CircuitBreaker, FaultPlan, RetryPolicy
    from repro.storage.device import StorageSpec

    breaker = CircuitBreaker(failure_threshold=5, recovery_timeout_s=0.05)
    faulty = system.populate(
        "atm-faulty", cube,
        storage=StorageSpec(
            shards=4,
            cache_blocks=16,
            fault_plan=FaultPlan(seed=args.seed, read_error_rate=0.05,
                                 torn_rate=0.02),
            retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.0005),
            breaker=breaker,
        ),
    )
    for s in range(0, n, 4):
        faulty.evaluate_degradable(
            RangeSumQuery.count([(s, min(s + 3, n - 1)), (0, n - 1), (2, 13)])
        )

    registry = system.metrics()
    if args.json:
        print(to_json(registry))
    else:
        print("metrics after one acquire -> populate -> query -> "
              "recognize -> chaos pass:")
        print(render_text(registry))
        # Per-shard breakers: report the first clone, with fleet totals.
        breakers = faulty.store.breakers or [breaker]
        snap = breakers[0].snapshot()
        print(f"breaker {snap['name']!r}: {snap['state']} "
              f"(streak={snap['consecutive_failures']}, "
              f"trips={snap['trips']}, rejections={snap['rejections']}) "
              f"[{len(breakers)} shard breaker(s)]")
    return 0


def _changed_files(root, ref: str) -> list[str] | None:
    """Repo-relative ``.py`` paths touched vs. ``ref`` (plus untracked).

    ``None`` means git could not answer (not a repository, bad ref);
    the caller turns that into a usage error rather than guessing.
    """
    import subprocess

    files: set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, cwd=str(root), capture_output=True, text=True,
                check=True,
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        files.update(
            line.strip() for line in proc.stdout.splitlines()
            if line.strip()
        )
    return sorted(f for f in files if f.endswith(".py"))


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the architectural-invariant linter (``repro.lint``).

    ``--deep`` adds the whole-program analyzers
    (:mod:`repro.lint.analysis`); ``--changed [REF]`` restricts
    reporting to files touched vs. a git ref (deep analyzers still see
    the whole tree — cross-file facts do not respect a diff boundary).
    Exits 0 when every rule is clean (or explicitly suppressed with a
    justification comment), 1 when any error-severity finding remains,
    2 on usage errors — the contract the lint CI jobs gate on.
    """
    import json
    from pathlib import Path

    from repro import __version__
    from repro.lint import (
        LintEngine,
        LintError,
        all_rules,
        get_rule,
        load_config,
        repo_root,
    )

    rules = all_rules()
    if args.rules:
        rules = [
            get_rule(rule_id.strip())
            for rule_id in args.rules.split(",")
            if rule_id.strip()
        ]
    root = repo_root()
    try:
        config = load_config(root)
    except LintError as exc:
        print(f"aims lint: {exc}", file=sys.stderr)
        return 2
    changed: list[str] | None = None
    if args.changed is not None:
        changed = _changed_files(root, args.changed)
        if changed is None:
            print(f"aims lint: cannot diff against {args.changed!r} "
                  f"(not a git checkout, or unknown ref)",
                  file=sys.stderr)
            return 2
    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [root / rel for rel in config.roots]
        if not any(p.exists() for p in paths):
            print("no configured source tree next to the installed "
                  "package; pass explicit paths to lint",
                  file=sys.stderr)
            return 2
        paths = [p for p in paths if p.exists()]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"no such path(s): {missing}", file=sys.stderr)
        return 2
    if changed is not None:
        # Per-file rules only need to visit the touched files that sit
        # under the requested trees.
        resolved = [p.resolve() for p in paths]
        keep = []
        for rel in changed:
            file = (root / rel).resolve()
            if not file.is_file():
                continue  # deleted files have nothing to lint
            if any(
                base == file or base in file.parents
                for base in resolved
            ):
                keep.append(root / rel)
        paths = keep
    findings = LintEngine(rules).lint_paths(paths, root=root)
    findings = [
        f for f in findings if not config.excluded(f.rule_id, f.file)
    ]
    deep_stats = None
    rule_meta = {
        r.rule_id: (r.severity, r.description) for r in rules
    }
    if args.deep:
        from repro.lint.analysis import DEEP_RULES, run_deep

        report = run_deep(
            root,
            config,
            use_cache=not args.no_cache,
            only_files=changed,
        )
        findings = sorted(findings + report.findings)
        deep_stats = report.stats
        for rule_id, description in DEEP_RULES.items():
            rule_meta[rule_id] = ("error", description)
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    if args.format == "json":
        payload = {
            "schema": "repro.lint/v1",
            "rules": [
                {"id": rule_id, "severity": sev, "description": desc}
                for rule_id, (sev, desc) in sorted(rule_meta.items())
            ],
            "findings": [f.as_dict() for f in findings],
            "summary": {"errors": errors, "warnings": warnings},
        }
        if deep_stats is not None:
            payload["deep"] = deep_stats
        if changed is not None:
            payload["changed"] = changed
        print(json.dumps(payload, indent=2))
    elif args.format == "sarif":
        from repro.lint.sarif import to_sarif

        print(json.dumps(
            to_sarif(
                findings,
                {rid: desc for rid, (_, desc) in rule_meta.items()},
                __version__,
            ),
            indent=2,
        ))
    else:
        for finding in findings:
            print(finding.format())
        tail = f"({len(rule_meta)} rule(s))"
        if deep_stats is not None:
            tail += (
                f" [deep: {deep_stats['files']} file(s), "
                f"{deep_stats['cached']} cached]"
            )
        print(f"aims lint: {errors} error(s), {warnings} warning(s) "
              f"{tail}")
    return 1 if errors else 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Aggregate the benchmark result tables into one report."""
    from pathlib import Path

    results = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    if not results.is_dir():
        results = Path.cwd() / "benchmarks" / "results"
    if not results.is_dir():
        print("no benchmarks/results directory; run "
              "`pytest benchmarks/ --benchmark-only` first", file=sys.stderr)
        return 1
    files = sorted(results.glob("*.txt"))
    if not files:
        print("benchmarks/results is empty; run the benchmarks first",
              file=sys.stderr)
        return 1
    for path in files:
        print(f"==== {path.stem} ====")
        print(path.read_text().rstrip())
        print()
    print(f"({len(files)} experiment tables; see EXPERIMENTS.md for the "
          f"paper-vs-measured comparison)")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Record → replay drill: prove a session replays bitwise-exactly.

    Records one live ingest session (points, weights, timestamps,
    sampler-rate changes) through a
    :class:`~repro.streams.replay.SessionRecorder`, replays it into a
    twin engine seeded with the same starting coefficients, and
    compares the stored coefficients byte for byte.  Exits non-zero if
    fidelity is broken.  ``--out`` saves the record as JSON lines
    (the ``repro.replay/v1`` framing in ``docs/REPLAY.md``).
    """
    from repro.acquisition.streaming import StreamingAdaptiveSampler
    from repro.query.propolyne import ProPolyneEngine
    from repro.storage.device import StorageSpec
    from repro.streams.ingest import IngestService
    from repro.streams.replay import SessionRecorder, SessionReplayer

    if args.points < 1:
        print(f"--points must be >= 1, got {args.points}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    n, width = 32, 8
    cube = rng.poisson(2.0, size=(n, width)).astype(float)
    spec = StorageSpec(shards=2, cache_blocks=16)

    def build() -> ProPolyneEngine:
        return ProPolyneEngine(
            cube, max_degree=1, block_size=4, storage=spec
        )

    engine = build()
    engine.enable_versioning()
    recorder = SessionRecorder()
    sampler = StreamingAdaptiveSampler(width=width, rate_hz=50.0)

    def to_point(sample) -> tuple[int, int]:
        return (int(abs(sample.value)) % n, sample.sensor_id % width)

    with IngestService(
        engine, queue_capacity=1024, commit_batch=64, recorder=recorder
    ) as service:
        session = service.open_session("replay-drill", sampler, to_point)
        tick = 0
        while session.submitted < args.points:
            session.push(
                np.sin(np.arange(width) * 0.3 + tick * 0.2) * 20.0
            )
            tick += 1
        service.flush()
        session.close()
    record = recorder.record("replay-drill")

    speed = None if args.speed <= 0 else args.speed
    twin = build()
    replayed = SessionReplayer(record, speed=speed).replay_into(twin)
    identical = (
        engine.to_coefficients().tobytes() == twin.to_coefficients().tobytes()
    )
    print(f"replay drill: session {record.session_id!r}")
    print(f"  recorded        : {record.points} points, "
          f"{record.rate_changes} rate change(s), "
          f"{record.duration_s:.2f} s of stream time")
    print(f"  start epoch     : {record.start_epoch} "
          f"(live engine now at epoch {engine.epoch})")
    print(f"  replayed        : {replayed} points at "
          f"{'full speed' if speed is None else f'x{speed:g}'}")
    print(f"  fidelity        : "
          f"{'bitwise-identical' if identical else 'MISMATCH'}")
    if args.out:
        path = record.save(args.out)
        print(f"  record saved    : {path}")
    return 0 if identical else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    """EXPLAIN + audit provenance for a demo range-sum.

    Prints the classic indented query plan, evaluates the query
    degradably (live, or pinned to ``--as-of EPOCH`` on the versioned
    demo engine), and prints the attached
    :class:`~repro.query.explain.QueryProvenance` audit record as JSON
    (``repro.provenance/v1``).
    """
    from repro.query.explain import attach_provenance, explain, format_plan
    from repro.query.ingest import BatchInserter
    from repro.query.propolyne import ProPolyneEngine
    from repro.query.rangesum import RangeSumQuery
    from repro.storage.device import StorageSpec

    rng = np.random.default_rng(args.seed)
    n = 16
    cube = _atmospheric_count_cube(rng, n)
    engine = ProPolyneEngine(
        cube, max_degree=1, block_size=4,
        storage=StorageSpec(shards=2, cache_blocks=16),
    )
    engine.enable_versioning()
    # A little history, so --as-of has epochs to travel to.
    inserter = BatchInserter(engine)
    for _ in range(args.epochs):
        points = [tuple(p) for p in rng.integers(0, n, size=(32, 3))]
        inserter.insert_batch(points)
    query = RangeSumQuery.count([(2, 11), (0, n - 1), (3, 12)])
    plan = explain(engine, query)
    print(format_plan(plan))
    as_of = args.as_of
    if as_of is not None and not 0 <= as_of <= engine.epoch:
        print(f"--as-of must be in [0, {engine.epoch}], got {as_of}",
              file=sys.stderr)
        return 2
    outcome = engine.evaluate_degradable(query, as_of=as_of)
    outcome = attach_provenance(engine, query, outcome, as_of=as_of)
    label = "live" if as_of is None else f"as of epoch {as_of}"
    print(f"\nanswer ({label}, engine at epoch {engine.epoch}): "
          f"{outcome.value:.6g}"
          + (" [degraded]" if outcome.degraded else " [exact]"))
    print("provenance:")
    print(outcome.provenance.to_json(indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AIMS: An Immersidata Management System — reproduction CLI",
    )
    parser.add_argument("--seed", type=int, default=2003,
                        help="random seed (default 2003)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show the system inventory")

    glove = sub.add_parser("glove", help="simulate and sample a glove session")
    glove.add_argument("--duration", type=float, default=10.0)
    glove.add_argument(
        "--sampler", default="adaptive",
        choices=("fixed", "modified_fixed", "grouped", "adaptive"),
    )

    adhd = sub.add_parser("adhd", help="run the ADHD SVM study")
    adhd.add_argument("--subjects", type=int, default=20,
                      help="subjects per group")
    adhd.add_argument("--duration", type=float, default=30.0)

    asl = sub.add_parser("asl", help="recognize a synthesized sign stream")
    asl.add_argument("--signs", nargs="+",
                     default=["GREEN", "RED", "HELLO"])

    sub.add_parser("olap", help="progressive OLAP demo on atmospheric data")
    sub.add_parser("report", help="print all benchmark result tables")

    chaos = sub.add_parser(
        "chaos",
        help="resilience drill: degradable queries under injected faults",
    )
    chaos.add_argument("--fault-rate", type=float, default=0.05,
                       dest="fault_rate",
                       help="injected read-error rate (default 0.05)")
    chaos.add_argument("--queries", type=int, default=16,
                       help="degradable queries to run (default 16)")
    chaos.add_argument("--deadline", type=float, default=None,
                       help="per-query deadline in seconds (default none)")
    chaos.add_argument("--shards", type=int, default=1,
                       help="storage shards for the drill (default 1)")
    chaos.add_argument("--cache-blocks", type=int, default=32,
                       dest="cache_blocks",
                       help="block-cache capacity (default 32)")

    cluster = sub.add_parser(
        "cluster",
        help="multi-tenant cluster drill: routing, quotas, failover",
    )
    cluster.add_argument("--backends", type=int, default=2,
                         help="data-owning backend nodes (default 2)")
    cluster.add_argument("--quota", type=int, default=4,
                         help="flooding tenant's in-flight quota "
                              "(default 4)")
    cluster.add_argument("--flood", type=int, default=32,
                         help="batches the flooding tenant submits "
                              "(default 32)")

    replay = sub.add_parser(
        "replay",
        help="record a live ingest session and replay it bitwise-exactly",
    )
    replay.add_argument("--points", type=int, default=400,
                        help="points to record before replaying "
                             "(default 400)")
    replay.add_argument("--speed", type=float, default=0.0,
                        help="replay speed multiplier; <= 0 means "
                             "as fast as possible (default)")
    replay.add_argument("--out", default=None,
                        help="save the session record (JSON lines) "
                             "to this path")

    explain = sub.add_parser(
        "explain",
        help="print a query plan and its audit provenance record",
    )
    explain.add_argument("--as-of", type=int, default=None, dest="as_of",
                         help="evaluate pinned to this storage epoch "
                              "(default: live)")
    explain.add_argument("--epochs", type=int, default=3,
                         help="history depth to build for the demo "
                              "engine (default 3)")
    explain.add_argument("--json", action="store_true",
                         help="reserved for symmetry; provenance is "
                              "always printed as JSON")

    stats = sub.add_parser(
        "stats",
        help="run an end-to-end pass and print the observability report",
    )
    stats.add_argument("--json", action="store_true",
                       help="emit the metrics registry as JSON")
    stats.add_argument("--service-mode", choices=("thread", "process"),
                       default="thread", dest="service_mode",
                       help="query-service execution mode: 'thread' "
                            "(default) or 'process' (GIL-free engine "
                            "replicas; needs a pickle-clean spec)")

    lint = sub.add_parser(
        "lint",
        help="check the architectural invariants (repro.lint)",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: "
                           "the [tool.repro-lint] roots)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", help="report format (default text)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule ids to run "
                           "(default: every registered rule)")
    lint.add_argument("--deep", action="store_true",
                      help="also run the whole-program analyzers "
                           "(lockset races, lock-order cycles, "
                           "exception contracts, catalogue drift)")
    lint.add_argument("--changed", nargs="?", const="HEAD",
                      default=None, metavar="REF",
                      help="only report findings in files changed vs. "
                           "a git ref (default HEAD); deep analyzers "
                           "still read the whole tree")
    lint.add_argument("--no-cache", action="store_true",
                      help="ignore and do not write the deep-analysis "
                           "incremental cache")
    return parser


_HANDLERS = {
    "info": _cmd_info,
    "glove": _cmd_glove,
    "adhd": _cmd_adhd,
    "asl": _cmd_asl,
    "olap": _cmd_olap,
    "chaos": _cmd_chaos,
    "cluster": _cmd_cluster,
    "replay": _cmd_replay,
    "explain": _cmd_explain,
    "report": _cmd_report,
    "stats": _cmd_stats,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
