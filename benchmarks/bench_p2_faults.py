"""P2 — graceful degradation under injected storage faults.

The resilience layer's contract is quantitative: as the injected
read-fault rate climbs, throughput may fall (retries cost time) and
some queries may degrade, but *no* query may fail unhandled, every
degraded answer must carry a finite guaranteed error bound, and at a
zero fault rate every answer must be bitwise identical to
``evaluate_exact``.  This benchmark sweeps the fault rate over
0% / 1% / 5% / 10% of reads and measures exactly those properties.

Results land in ``benchmarks/results/P2_faults.txt`` (table) and in
``BENCH_faults.json`` at the repo root (machine-readable: per-rate
throughput, degraded counts, retry totals, worst relative error of any
degraded answer) — CI uploads the JSON as an artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.faults import CircuitBreaker, FaultPlan, RetryPolicy
from repro.obs import counter as obs_counter
from repro.query.propolyne import ProPolyneEngine
from repro.query.rangesum import RangeSumQuery

from conftest import format_table

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_faults.json"

FAULT_RATES = (0.0, 0.01, 0.05, 0.10)
POOL_CAPACITY = 16
N_QUERIES = 48


def build_engine(fault_rate: float) -> ProPolyneEngine:
    """A 64x64 Poisson cube behind a fault-injected resilient store."""
    rng = np.random.default_rng(2003)
    cube = rng.poisson(3.0, (64, 64)).astype(float)
    plan = FaultPlan(
        seed=7,
        read_error_rate=fault_rate,
        torn_rate=fault_rate / 2,
    )
    return ProPolyneEngine(
        cube,
        max_degree=1,
        block_size=7,
        pool_capacity=POOL_CAPACITY,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.0002),
        breaker=CircuitBreaker(failure_threshold=8, recovery_timeout_s=0.02),
    )


def workload(seed: int = 17) -> list[RangeSumQuery]:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(N_QUERIES):
        lo1 = int(rng.integers(0, 40))
        lo2 = int(rng.integers(0, 40))
        queries.append(
            RangeSumQuery.count(
                [(lo1, lo1 + int(rng.integers(4, 23))),
                 (lo2, lo2 + int(rng.integers(4, 23)))]
            )
        )
    return queries


def run_sweep_point(fault_rate: float, queries, exact_answers) -> dict:
    """One fault-rate point: run the workload, account for every query."""
    engine = build_engine(fault_rate)
    retries_before = obs_counter("retry.retries").value
    giveups_before = obs_counter("retry.giveups").value
    degraded = 0
    unhandled = 0
    exact_matches = 0
    worst_rel_err = 0.0
    started = time.perf_counter()
    for query, truth in zip(queries, exact_answers):
        try:
            outcome = engine.evaluate_degradable(query)
        except Exception:  # the contract: this must never happen
            unhandled += 1
            continue
        if outcome.degraded:
            degraded += 1
            assert np.isfinite(outcome.error_bound)
            scale = max(abs(truth), 1.0)
            worst_rel_err = max(
                worst_rel_err, abs(outcome.value - truth) / scale
            )
        else:
            exact_matches += int(outcome.value == truth)
    elapsed = time.perf_counter() - started
    return {
        "fault_rate": fault_rate,
        "queries": len(queries),
        "elapsed_s": round(elapsed, 4),
        "throughput_qps": round(len(queries) / elapsed, 2),
        "degraded": degraded,
        "unhandled": unhandled,
        "exact_matches": exact_matches,
        "worst_degraded_rel_err": round(worst_rel_err, 6),
        "retries": int(obs_counter("retry.retries").value - retries_before),
        "giveups": int(obs_counter("retry.giveups").value - giveups_before),
        "breaker": engine.breaker.snapshot(),
    }


def run_benchmark() -> dict:
    queries = workload()
    clean = build_engine(0.0)
    exact_answers = [clean.evaluate_exact(q) for q in queries]
    runs = [
        run_sweep_point(rate, queries, exact_answers)
        for rate in FAULT_RATES
    ]
    payload = {
        "schema": "repro.bench/faults-v1",
        "pool_capacity": POOL_CAPACITY,
        "retry_max_attempts": 4,
        "runs": runs,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_p2_fault_sweep(emit, benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    runs = payload["runs"]
    rows = [
        [f"{r['fault_rate']:.0%}", r["throughput_qps"],
         f"{r['degraded']}/{r['queries']}", r["retries"], r["giveups"],
         r["breaker"]["state"]]
        for r in runs
    ]
    emit(
        "P2_faults",
        format_table(
            ["fault rate", "qps", "degraded", "retries", "giveups",
             "breaker"],
            rows,
        )
        + "\nJSON baseline written to " + JSON_PATH.name,
    )
    by_rate = {r["fault_rate"]: r for r in runs}
    # The headline claims of the resilience layer:
    # 1. no query ever fails unhandled, at any fault rate;
    for r in runs:
        assert r["unhandled"] == 0
    # 2. with faults disabled, every answer is bitwise equal to exact;
    assert by_rate[0.0]["degraded"] == 0
    assert by_rate[0.0]["exact_matches"] == by_rate[0.0]["queries"]
    # 3. the 5% sweep completes and every degraded answer stayed within
    #    its finite bound machinery (worst relative error recorded).
    assert by_rate[0.05]["queries"] == N_QUERIES
    assert np.isfinite(by_rate[0.05]["worst_degraded_rel_err"])
    assert JSON_PATH.exists()
